"""Environment smoke test: traces, non-ideal storage, graceful degradation.

    python -m repro.env.smoke

Five checks:

1. **Constant-trace byte-identity**: a ``constant(watts)`` trace driven
   through :class:`~repro.env.trace.TraceSource` reproduces the
   constant-source :class:`~repro.energy.metrics.Breakdown`
   byte-identically (IEEE-754 bit-exact, every field) on the Figure
   9/Table IV engine for all three device technologies, interpreted
   *and* under the compiled fused executor.
2. **Emergent outages**: a scarce solar trace drains the per-technology
   capacitor through its nights — the run restarts many times with no
   scheduled outage list anywhere.
3. **Adaptive >= fixed**: on every non-constant trace family the
   adaptive checkpoint policy completes at least as many inferences as
   the fixed cadence at equal harvested energy, while reporting its
   degraded-mode tallies (skipped checkpoints / deferred commits /
   fail-stops).
4. **Kill-resume under a fluctuating trace**: a seeded SIGKILL campaign
   over the SVM intermittent workload powered by a solar trace resumes
   byte-identically to its uninterrupted run.
5. **Trace persistence**: a generated trace survives the JSONL
   save/load round trip exactly, and the round-tripped trace still
   replays byte-identically.

Exit status 0 means the harvest-environment layer holds; wired into
``make env-smoke`` (part of ``make test``).
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import tempfile
from pathlib import Path

from repro import compilejit
from repro.devices.parameters import ALL_TECHNOLOGIES, MODERN_STT
from repro.energy.model import InstructionCostModel
from repro.env import constant, solar_diurnal
from repro.harvest import HarvestingConfig, ProfileRun
from repro.ml.benchmarks import SVM_ADULT


def _check_constant_identity(failures: list[str]) -> None:
    cost_by_tech = {p.name: InstructionCostModel(p) for p in ALL_TECHNOLOGIES}
    was_enabled = compilejit.enabled()
    try:
        for params in ALL_TECHNOLOGIES:
            cost = cost_by_tech[params.name]
            profile = SVM_ADULT.profile(cost)
            trace = constant(100e-6)
            compilejit.set_enabled(False)
            reference = ProfileRun(
                profile, cost, HarvestingConfig.paper(params, 100e-6)
            ).run()
            traced = ProfileRun(
                profile, cost, HarvestingConfig.from_trace(params, trace)
            ).run()
            compilejit.set_enabled(True)
            fused = ProfileRun(
                profile, cost, HarvestingConfig.from_trace(params, trace)
            ).run()
            for label, candidate in (("interpreted", traced), ("fused", fused)):
                if dataclasses.asdict(candidate) != dataclasses.asdict(
                    reference
                ):
                    failures.append(
                        f"constant trace is not byte-identical to the "
                        f"constant source on {params.name} ({label})"
                    )
    finally:
        compilejit.set_enabled(was_enabled)


def _check_emergent_outages(failures: list[str]) -> int:
    from repro.env import replay

    trace = solar_diurnal(
        seed=1, peak_watts=2e-4, floor_watts=3e-5, day_length=0.2
    )
    result = replay(
        SVM_ADULT,
        MODERN_STT,
        trace,
        time_budget=4.0,
        max_inferences=100_000,
        checkpoint_period=2,
    )
    if result.restarts < 10:
        failures.append(
            f"scarce solar trace produced only {result.restarts} emergent "
            "outages (expected many night-time shutdowns)"
        )
    if result.inferences < 1:
        failures.append("scarce solar trace completed no inferences at all")
    return result.restarts


def _check_adaptive_at_least_fixed(failures: list[str]) -> list[dict]:
    from repro.experiments import env_sweep

    rows = env_sweep.run()
    for row in rows:
        if not row["adaptive_at_least_fixed"]:
            failures.append(
                f"adaptive policy completed fewer inferences than the "
                f"fixed cadence on the {row['family']} trace "
                f"({row['adaptive']['inferences']} < "
                f"{row['fixed']['inferences']})"
            )
        if row["adaptive"]["degraded"]["skipped_checkpoint"] == 0:
            failures.append(
                f"adaptive policy never stretched the checkpoint cadence "
                f"on the {row['family']} trace (no graceful degradation "
                "exercised)"
            )
    kinetic_rows = [r for r in rows if r["family"] == "kinetic"]
    if not any(
        r["adaptive"]["degraded"]["fail_stop"] > 0 for r in kinetic_rows
    ):
        failures.append(
            "kinetic dead tail did not surface as a recorded fail-stop"
        )
    return rows


def _check_crash_resume_under_trace(failures: list[str], out: Path) -> None:
    from repro.durability.crashsim import CrashPlan, run_crash_campaign

    plan = CrashPlan(
        workload="svm", kills=6, seed=3, trace_family="solar", trace_seed=1
    )
    report = run_crash_campaign(plan, out / "crash-solar")
    if not report.identical:
        failures.append(
            "SIGKILL+resume under the solar trace diverged from the "
            "uninterrupted run"
        )
    if report.kills != 6:
        failures.append(
            f"crash campaign performed {report.kills} kills, expected 6"
        )


def _check_trace_round_trip(failures: list[str], out: Path) -> None:
    from repro.env import HarvestTrace, replay

    trace = solar_diurnal(
        seed=1, peak_watts=2e-4, floor_watts=3e-5, day_length=0.2
    )
    path = out / "solar.jsonl"
    trace.save(path)
    loaded = HarvestTrace.load(path)
    if loaded != trace:
        failures.append("JSONL round trip changed the trace")
        return
    kwargs = {
        "time_budget": 0.8,
        "max_inferences": 100_000,
        "checkpoint_period": 2,
    }
    direct = replay(SVM_ADULT, MODERN_STT, trace, **kwargs)
    via_file = replay(SVM_ADULT, MODERN_STT, loaded, **kwargs)
    if dataclasses.asdict(direct) != dataclasses.asdict(via_file):
        failures.append("round-tripped trace replays differently")


def run_smoke(out_dir: str | None = None) -> int:
    failures: list[str] = []
    with tempfile.TemporaryDirectory() as tmp:
        out = Path(out_dir) if out_dir is not None else Path(tmp)
        out.mkdir(parents=True, exist_ok=True)

        _check_constant_identity(failures)
        print(
            "constant(watts) trace vs constant source: byte-identical "
            "Breakdowns on all three technologies (interpreted + fused)"
        )

        restarts = _check_emergent_outages(failures)
        print(
            f"scarce solar trace: {restarts} emergent outages "
            "(no scheduled outage list)"
        )

        rows = _check_adaptive_at_least_fixed(failures)
        for row in rows:
            a, f = row["adaptive"], row["fixed"]
            print(
                f"{row['family']:9s} adaptive {a['inferences']} >= fixed "
                f"{f['inferences']} inferences; degraded: "
                f"{a['degraded']['skipped_checkpoint']} skipped, "
                f"{a['degraded']['deferred_commit']} deferred, "
                f"{a['degraded']['fail_stop']} fail-stop"
            )

        _check_crash_resume_under_trace(failures, out)
        print("SIGKILL+resume under the solar trace: byte-identical")

        _check_trace_round_trip(failures, out)
        print("trace JSONL round trip: exact, replays identically")

    if failures:
        print("\nenv-smoke FAILED:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print("\nenv-smoke OK")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="keep the campaign artifacts here (default: temp dir)",
    )
    args = parser.parse_args(argv)
    return run_smoke(args.out)


if __name__ == "__main__":
    sys.exit(main())

"""Trace-driven harvest environments and graceful degradation.

The paper's harvester is a constant — its single knob is the swept
wattage of Figure 9.  This package supplies the deployment-side
realism the roadmap names: replayable power *traces*
(:mod:`repro.env.trace`), non-ideal storage (leakage/ESR knobs on
:class:`repro.harvest.EnergyBuffer`), and an adaptive runtime policy
(:mod:`repro.env.adaptive`) that degrades explicitly — skipped
checkpoints, deferred commits, fail-stops — instead of silently.
:mod:`repro.env.replay` scores policies per trace family, and
``python -m repro env`` exposes list/describe/replay/sweep.
"""

from repro.env.adaptive import AdaptiveCheckpointer, AdaptivePolicy, DegradedMode
from repro.env.replay import ReplayResult, compare, replay
from repro.env.trace import (
    FAMILIES,
    TRACE_SCHEMA,
    HarvestTrace,
    TracePosition,
    TraceSource,
    constant,
    kinetic,
    rf_burst,
    solar_diurnal,
)

__all__ = [
    "AdaptiveCheckpointer",
    "AdaptivePolicy",
    "DegradedMode",
    "FAMILIES",
    "HarvestTrace",
    "ReplayResult",
    "TRACE_SCHEMA",
    "TracePosition",
    "TraceSource",
    "compare",
    "constant",
    "kinetic",
    "replay",
    "rf_burst",
    "solar_diurnal",
]

"""Replayable harvest-power traces (``repro.env.trace/v1``).

The paper sweeps a *constant* power source and notes the model
"captures a representative operation" even though real harvesters
fluctuate.  A :class:`HarvestTrace` is the fluctuating case made
reproducible: a piecewise-constant power timeline — sample ``i`` holds
``watts[i]`` over ``[times[i], times[i+1])`` — with a deterministic
generator family behind every synthetic trace and a JSONL file format
(one header line, one line per sample) written through
:mod:`repro.durability.atomic` so a half-written trace never exists on
disk.

:class:`TraceSource` adapts a trace to the
:class:`~repro.harvest.source.PowerSource` protocol, so it slots in
wherever :class:`~repro.harvest.source.ConstantPowerSource` is used
today — the intermittent engines, the fault campaigns, the crash
harness, the experiment sweeps.  A single-sample trace takes a
*constant fast path* that evaluates the exact float expressions
``ConstantPowerSource`` evaluates (``watts * duration`` and
``energy / watts``), so a ``constant(w)`` trace reproduces the
constant-source :class:`~repro.energy.metrics.Breakdown` byte for
byte; ``make env-smoke`` and the property tests assert it.

Tail semantics make outages *emergent*: with ``extend="hold"`` the
last sample's level persists forever (a zero tail means the harvester
died — charging waits become infinite and the engines raise
:class:`~repro.harvest.intermittent.ChargeWindowFailure`); with
``extend="loop"`` the trace repeats with period ``period`` (the
solar-diurnal day/night cycle).
"""

from __future__ import annotations

import json
import math
from bisect import bisect_right
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Mapping, Optional, Union

import numpy as np

TRACE_SCHEMA = "repro.env.trace/v1"

#: Tail policies: ``hold`` keeps the last sample's power forever,
#: ``loop`` repeats the trace every ``period`` seconds.
EXTENDS = ("hold", "loop")


@dataclass(frozen=True)
class HarvestTrace:
    """A piecewise-constant power timeline.

    ``times`` are strictly increasing sample timestamps in seconds,
    starting at 0.0; ``watts[i]`` is the harvested power held over
    ``[times[i], times[i+1])``.  The tail behaviour past the last
    sample is ``extend`` (see :data:`EXTENDS`); a looping trace needs
    ``period > times[-1]``.  ``family`` names the generator that
    produced the trace (``constant`` / ``rf_burst`` / ``solar`` /
    ``kinetic`` / ``custom``) and ``meta`` records its parameters.
    """

    name: str
    times: tuple[float, ...]
    watts: tuple[float, ...]
    family: str = "custom"
    extend: str = "hold"
    period: float = 0.0
    meta: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        times = tuple(float(t) for t in self.times)
        watts = tuple(float(w) for w in self.watts)
        object.__setattr__(self, "times", times)
        object.__setattr__(self, "watts", watts)
        if not self.name:
            raise ValueError("trace needs a name")
        if len(times) == 0:
            raise ValueError("trace needs at least one sample")
        if len(times) != len(watts):
            raise ValueError("times and watts must have equal length")
        if times[0] != 0.0:
            raise ValueError("trace must start at time 0.0")
        for a, b in zip(times, times[1:]):
            if not b > a:
                raise ValueError("sample times must be strictly increasing")
        for value in times + watts + (self.period,):
            if not math.isfinite(value):
                raise ValueError("trace values must be finite")
        for w in watts:
            if w < 0:
                raise ValueError("harvested power cannot be negative")
        if self.extend not in EXTENDS:
            raise ValueError(f"extend must be one of {EXTENDS}")
        if self.extend == "loop" and not self.period > times[-1]:
            raise ValueError("a looping trace needs period > times[-1]")

    # -- derived ----------------------------------------------------------

    @property
    def n_samples(self) -> int:
        return len(self.times)

    @property
    def span(self) -> float:
        """Seconds covered by explicit samples (the loop period for a
        looping trace)."""
        return self.period if self.extend == "loop" else self.times[-1]

    @property
    def is_constant(self) -> bool:
        """True when the trace is a single level held forever — the
        case :class:`TraceSource` reproduces byte-identically to
        :class:`~repro.harvest.source.ConstantPowerSource`."""
        return len(self.watts) == 1

    @property
    def peak_watts(self) -> float:
        return max(self.watts)

    def mean_watts(self) -> float:
        """Time-weighted mean power over one span (the held tail level
        for a single-sample trace)."""
        if len(self.watts) == 1:
            return self.watts[0]
        end = self.period if self.extend == "loop" else self.times[-1]
        total = 0.0
        for i, w in enumerate(self.watts):
            t1 = self.times[i + 1] if i + 1 < len(self.times) else end
            total += w * (t1 - self.times[i])
        return total / end if end > 0 else self.watts[0]

    # -- serialisation ----------------------------------------------------

    def to_json_obj(self) -> dict:
        return {
            "schema": TRACE_SCHEMA,
            "name": self.name,
            "family": self.family,
            "extend": self.extend,
            "period": self.period,
            "meta": dict(self.meta),
            "times": list(self.times),
            "watts": list(self.watts),
        }

    @classmethod
    def from_json_obj(cls, obj: Mapping) -> "HarvestTrace":
        if obj.get("schema") != TRACE_SCHEMA:
            raise ValueError(
                f"schema is {obj.get('schema')!r}, expected {TRACE_SCHEMA!r}"
            )
        return cls(
            name=str(obj["name"]),
            times=tuple(obj["times"]),
            watts=tuple(obj["watts"]),
            family=str(obj.get("family", "custom")),
            extend=str(obj.get("extend", "hold")),
            period=float(obj.get("period", 0.0)),
            meta=dict(obj.get("meta", {})),
        )

    def save(self, path: Union[str, Path]) -> None:
        """Write the trace as JSONL: a header line (schema, name,
        family, extend, period, meta, sample count) followed by one
        ``[time, watts]`` line per sample, atomically."""
        from repro.durability.atomic import atomic_write_text

        header = {
            "schema": TRACE_SCHEMA,
            "name": self.name,
            "family": self.family,
            "extend": self.extend,
            "period": self.period,
            "meta": dict(self.meta),
            "samples": len(self.times),
        }
        lines = [json.dumps(header, sort_keys=True)]
        lines.extend(
            json.dumps([t, w]) for t, w in zip(self.times, self.watts)
        )
        atomic_write_text(Path(path), "\n".join(lines) + "\n")

    @classmethod
    def load(cls, path: Union[str, Path]) -> "HarvestTrace":
        """Read a JSONL trace written by :meth:`save`."""
        text = Path(path).read_text(encoding="utf-8")
        lines = [line for line in text.splitlines() if line.strip()]
        if not lines:
            raise ValueError(f"{path}: empty trace file")
        header = json.loads(lines[0])
        if header.get("schema") != TRACE_SCHEMA:
            raise ValueError(
                f"{path}: schema is {header.get('schema')!r}, expected "
                f"{TRACE_SCHEMA!r}"
            )
        samples = [json.loads(line) for line in lines[1:]]
        declared = int(header.get("samples", len(samples)))
        if declared != len(samples):
            raise ValueError(
                f"{path}: header declares {declared} samples, file holds "
                f"{len(samples)}"
            )
        return cls(
            name=str(header["name"]),
            times=tuple(s[0] for s in samples),
            watts=tuple(s[1] for s in samples),
            family=str(header.get("family", "custom")),
            extend=str(header.get("extend", "hold")),
            period=float(header.get("period", 0.0)),
            meta=dict(header.get("meta", {})),
        )

    def describe(self) -> dict:
        """Summary statistics for the CLI's ``env describe``."""
        mean = self.mean_watts()
        active = sum(
            1 for w in self.watts if w > 0.5 * self.peak_watts
        )
        return {
            "name": self.name,
            "family": self.family,
            "extend": self.extend,
            "samples": self.n_samples,
            "span_s": self.span,
            "period_s": self.period if self.extend == "loop" else None,
            "mean_watts": mean,
            "peak_watts": self.peak_watts,
            "min_watts": min(self.watts),
            "duty_cycle": active / self.n_samples,
            "constant": self.is_constant,
        }


# ----------------------------------------------------------------------
# Deterministic synthetic generators
# ----------------------------------------------------------------------


def constant(watts: float, name: Optional[str] = None) -> HarvestTrace:
    """A single level held forever — the paper's harvester model as a
    trace.  :class:`TraceSource` replays it byte-identically to
    :class:`~repro.harvest.source.ConstantPowerSource(watts)`."""
    if watts <= 0:
        raise ValueError("power must be positive")
    return HarvestTrace(
        name=name or f"constant-{watts:g}W",
        times=(0.0,),
        watts=(float(watts),),
        family="constant",
        meta={"watts": float(watts)},
    )


def rf_burst(
    seed: int = 0,
    *,
    burst_watts: float = 5e-3,
    idle_watts: float = 60e-6,
    burst_duration: float = 2e-3,
    burst_period: float = 10e-3,
    jitter: float = 0.25,
    n_bursts: int = 16,
    name: Optional[str] = None,
) -> HarvestTrace:
    """RF energy bursts over a weak ambient floor (SONIC-style reader
    passes): ``n_bursts`` bursts of ``burst_watts``, nominally every
    ``burst_period`` seconds with seeded start jitter, ``idle_watts``
    between and after (held forever — the reader keeps polling)."""
    if burst_watts <= 0 or idle_watts < 0:
        raise ValueError("burst power must be positive, idle non-negative")
    if not 0 <= jitter < 1:
        raise ValueError("jitter must be in [0, 1)")
    if burst_duration <= 0 or burst_duration >= burst_period:
        raise ValueError("need 0 < burst_duration < burst_period")
    if n_bursts < 1:
        raise ValueError("need at least one burst")
    rng = np.random.default_rng(seed)
    slack = burst_period - burst_duration
    times = [0.0]
    watts = [float(idle_watts)]
    for k in range(n_bursts):
        offset = float(rng.uniform(0.0, jitter * slack))
        start = k * burst_period + offset
        if start <= times[-1]:
            start = times[-1] + 0.25 * burst_duration
        times.append(start)
        watts.append(float(burst_watts))
        times.append(start + burst_duration)
        watts.append(float(idle_watts))
    return HarvestTrace(
        name=name or f"rf-burst-s{seed}",
        times=tuple(times),
        watts=tuple(watts),
        family="rf_burst",
        extend="hold",
        meta={
            "seed": seed,
            "burst_watts": burst_watts,
            "idle_watts": idle_watts,
            "burst_duration": burst_duration,
            "burst_period": burst_period,
            "jitter": jitter,
            "n_bursts": n_bursts,
        },
    )


def solar_diurnal(
    seed: int = 0,
    *,
    peak_watts: float = 5e-3,
    floor_watts: float = 0.0,
    day_length: float = 0.1,
    day_fraction: float = 0.5,
    samples_per_day: int = 48,
    n_days: int = 1,
    cloud_depth: float = 0.2,
    name: Optional[str] = None,
) -> HarvestTrace:
    """A day/night cycle, looped: a half-sine irradiance arc over the
    first ``day_fraction`` of each ``day_length``-second day (scaled by
    seeded per-sample cloud attenuation), ``floor_watts`` at night.
    ``day_length`` defaults to 0.1 s because the simulated workloads
    run in milliseconds — the *shape* matters, not the wall clock.
    With ``floor_watts=0`` every night is an emergent outage."""
    if peak_watts <= 0 or floor_watts < 0:
        raise ValueError("peak power must be positive, floor non-negative")
    if not 0 < day_fraction < 1:
        raise ValueError("day_fraction must be in (0, 1)")
    if not 0 <= cloud_depth < 1:
        raise ValueError("cloud_depth must be in [0, 1)")
    if samples_per_day < 4 or n_days < 1 or day_length <= 0:
        raise ValueError("need samples_per_day >= 4, n_days >= 1, day_length > 0")
    rng = np.random.default_rng(seed)
    times = []
    watts = []
    for day in range(n_days):
        for i in range(samples_per_day):
            u = i / samples_per_day
            if u < day_fraction:
                arc = math.sin(math.pi * u / day_fraction)
                attenuation = 1.0 - cloud_depth * float(rng.random())
                level = floor_watts + (peak_watts - floor_watts) * arc * attenuation
            else:
                level = floor_watts
            times.append((day + u) * day_length)
            watts.append(float(level))
    return HarvestTrace(
        name=name or f"solar-s{seed}",
        times=tuple(times),
        watts=tuple(watts),
        family="solar",
        extend="loop",
        period=n_days * day_length,
        meta={
            "seed": seed,
            "peak_watts": peak_watts,
            "floor_watts": floor_watts,
            "day_length": day_length,
            "day_fraction": day_fraction,
            "samples_per_day": samples_per_day,
            "n_days": n_days,
            "cloud_depth": cloud_depth,
        },
    )


def kinetic(
    seed: int = 0,
    *,
    mean_watts: float = 1e-3,
    step_period: float = 5e-3,
    duty: float = 0.3,
    n_steps: int = 32,
    spread: float = 0.5,
    name: Optional[str] = None,
) -> HarvestTrace:
    """Motion/kinetic harvesting (footsteps, vibration): one power
    pulse per ``step_period`` lasting ``duty`` of it, with seeded
    log-normal amplitude around ``mean_watts``; zero between pulses
    and after the last one (the wearer stops moving — the tail is an
    exhausted harvester, so charge windows past it fail-stop)."""
    if mean_watts <= 0:
        raise ValueError("mean power must be positive")
    if not 0 < duty < 1:
        raise ValueError("duty must be in (0, 1)")
    if n_steps < 1 or step_period <= 0 or spread < 0:
        raise ValueError("need n_steps >= 1, step_period > 0, spread >= 0")
    rng = np.random.default_rng(seed)
    times = [0.0]
    watts = [0.0]
    for k in range(n_steps):
        start = k * step_period
        amplitude = mean_watts * math.exp(
            spread * float(rng.standard_normal()) - 0.5 * spread * spread
        )
        if start > times[-1]:
            times.append(start)
            watts.append(float(amplitude))
        else:  # first pulse starts at 0
            watts[-1] = float(amplitude)
        times.append(start + duty * step_period)
        watts.append(0.0)
    return HarvestTrace(
        name=name or f"kinetic-s{seed}",
        times=tuple(times),
        watts=tuple(watts),
        family="kinetic",
        extend="hold",
        meta={
            "seed": seed,
            "mean_watts": mean_watts,
            "step_period": step_period,
            "duty": duty,
            "n_steps": n_steps,
            "spread": spread,
        },
    )


#: Generator registry for the CLI and the experiment sweep.  Every
#: entry is deterministic in its arguments (seeded RNG, no clocks).
FAMILIES: dict[str, Callable[..., HarvestTrace]] = {
    "constant": constant,
    "rf_burst": rf_burst,
    "solar": solar_diurnal,
    "kinetic": kinetic,
}


# ----------------------------------------------------------------------
# PowerSource adapter
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class TracePosition:
    """Where in a trace a moment in simulated time falls — included in
    stall/fail-stop diagnoses so a trace-driven hang is debuggable from
    the exception alone."""

    index: int  #: sample index (within one period for looping traces)
    elapsed: float  #: absolute simulated time, seconds
    wraps: int = 0  #: completed loop periods before ``elapsed``

    def __str__(self) -> str:
        wrap = f", wrap {self.wraps}" if self.wraps else ""
        return f"trace sample {self.index} at t={self.elapsed:.6g}s{wrap}"


class TraceSource:
    """A :class:`~repro.harvest.source.PowerSource` driven by a trace.

    Piecewise-constant integration gives closed forms for ``energy``
    and ``time_to_harvest`` (prefix sums + bisection, O(log n) per
    query).  A single-sample trace short-circuits to the *identical*
    float expressions ``ConstantPowerSource`` uses, so constant traces
    are byte-exact stand-ins; ``constant_watts`` exposes that level
    (``None`` otherwise) for the compiled executor's eligibility check.
    """

    def __init__(self, trace: HarvestTrace) -> None:
        self.trace = trace
        self._times = trace.times
        self._watts = trace.watts
        #: Constant fast path: ConstantPowerSource's exact arithmetic.
        self.constant_watts: Optional[float] = (
            trace.watts[0] if trace.is_constant else None
        )
        if self.constant_watts is not None and self.constant_watts <= 0:
            raise ValueError(
                "a constant trace needs positive power (a zero level "
                "never charges the buffer)"
            )
        cum = [0.0]
        for i in range(len(trace.times) - 1):
            cum.append(
                cum[-1]
                + trace.watts[i] * (trace.times[i + 1] - trace.times[i])
            )
        self._cum = cum
        if trace.extend == "loop":
            self._period_energy = cum[-1] + trace.watts[-1] * (
                trace.period - trace.times[-1]
            )
        else:
            self._period_energy = 0.0

    def __repr__(self) -> str:
        return f"TraceSource({self.trace.name!r})"

    @property
    def watts(self) -> float:
        """The constant level (compiled fast path); AttributeError for
        a fluctuating trace, so duck-typed constant-only consumers fail
        loudly instead of silently flattening the trace."""
        if self.constant_watts is None:
            raise AttributeError(
                f"trace {self.trace.name!r} is not constant"
            )
        return self.constant_watts

    # -- position ---------------------------------------------------------

    def _index_at(self, time: float) -> int:
        if time <= 0.0:
            return 0
        return bisect_right(self._times, time) - 1

    def position(self, time: float) -> TracePosition:
        """The trace sample simulated time ``time`` falls in."""
        wraps = 0
        local = time
        if self.trace.extend == "loop" and time > 0.0:
            wraps = int(time // self.trace.period)
            local = time - wraps * self.trace.period
        return TracePosition(
            index=self._index_at(local), elapsed=time, wraps=wraps
        )

    # -- PowerSource protocol ----------------------------------------------

    def power(self, time: float) -> float:
        if self.constant_watts is not None:
            return self.constant_watts
        local = time
        if self.trace.extend == "loop" and time > 0.0:
            local = time - int(time // self.trace.period) * self.trace.period
        return self._watts[self._index_at(local)]

    def _integral(self, time: float) -> float:
        """Energy harvested over [0, time] (time >= 0)."""
        if time <= 0.0:
            return 0.0
        if math.isinf(time):
            tail = (
                self._period_energy
                if self.trace.extend == "loop"
                else self._watts[-1]
            )
            return math.inf if tail > 0.0 else self._cum[-1]
        if self.trace.extend == "loop":
            period = self.trace.period
            wraps = int(time // period)
            local = time - wraps * period
            return wraps * self._period_energy + self._partial(local)
        return self._partial(time)

    def _partial(self, time: float) -> float:
        """Energy over [0, time] within the explicit samples + tail."""
        i = self._index_at(time)
        return self._cum[i] + self._watts[i] * (time - self._times[i])

    def energy(self, start: float, duration: float) -> float:
        if self.constant_watts is not None:
            if duration < 0:
                raise ValueError("duration must be non-negative")
            return self.constant_watts * duration
        if duration < 0:
            raise ValueError("duration must be non-negative")
        if start < 0:
            raise ValueError("start must be non-negative")
        out = self._integral(start + duration) - self._integral(start)
        return out if out > 0.0 else 0.0

    def time_to_harvest(self, energy: float, start: float = 0.0) -> float:
        """Seconds until ``energy`` joules accumulate from ``start``;
        ``math.inf`` when the trace can never supply it (dead tail) —
        the engines turn that into an explicit
        :class:`~repro.harvest.intermittent.ChargeWindowFailure`
        instead of hanging."""
        if self.constant_watts is not None:
            if energy <= 0:
                return 0.0
            return energy / self.constant_watts
        if energy <= 0:
            return 0.0
        target = self._integral(start) + energy
        reached = self._invert(target)
        if math.isinf(reached):
            return math.inf
        wait = reached - start
        return wait if wait > 0.0 else 0.0

    def _invert(self, target: float) -> float:
        """Smallest absolute time T with integral(T) >= target."""
        if target <= 0.0:
            return 0.0
        base = 0.0
        if self.trace.extend == "loop":
            pe = self._period_energy
            if target > self._partial(self.trace.period):
                if pe <= 0.0:
                    return math.inf
                wraps = int((target - 1e-300) // pe)
                # Float guard: land in the period actually containing
                # the target.
                while wraps * pe >= target and wraps > 0:
                    wraps -= 1
                base = wraps * self.trace.period
                target -= wraps * pe
        # Scan the explicit samples for the segment covering `target`.
        times, watts, cum = self._times, self._watts, self._cum
        for i in range(len(times) - 1):
            if target <= cum[i + 1]:
                rate = watts[i]
                if rate <= 0.0:
                    # target == cum[i+1] with a zero segment: the energy
                    # completes exactly at the segment's end.
                    return base + times[i + 1]
                return base + times[i] + (target - cum[i]) / rate
        # Tail segment.
        rate = watts[-1]
        if self.trace.extend == "loop":
            if rate <= 0.0:
                return base + self.trace.period
            return base + times[-1] + (target - cum[-1]) / rate
        if rate <= 0.0:
            return math.inf
        return base + times[-1] + (target - cum[-1]) / rate

"""Adaptive graceful degradation under realistic harvest environments.

Under the paper's constant source a fixed checkpoint cadence is optimal
by construction — the power process never surprises the runtime.  Under
a trace (RF bursts, solar arcs, kinetic pulses) the buffer's headroom
swings, and a fixed cadence either wastes Backup energy when charged or
replays too much work when an outage lands.  This module layers a
headroom-aware policy over the engines:

* :class:`AdaptivePolicy` — the knobs: stretch the checkpoint period up
  to ``max_period``x while the capacitor is charged, snap back to the
  baseline as headroom falls through ``tighten_below``, defer host
  NVImage writes below ``defer_below``, and bound charge-window retries.
* :class:`DegradedMode` — the explicit taxonomy of what the policy gave
  up (``skipped_checkpoint`` / ``deferred_commit`` / ``fail_stop``),
  matching the engines' :data:`repro.harvest.intermittent.DEGRADED_MODES`
  tallies and the ``env.degraded`` telemetry events.
* :class:`AdaptiveCheckpointer` — wraps a
  :class:`repro.durability.Checkpointer` so *host* NVImage writes follow
  the same policy on an :class:`~repro.harvest.intermittent.IntermittentRun`.

Soundness of the ≥-fixed guarantee: a stretched cadence is only used
while headroom sits above the tighten threshold, and (in the aggregate
engine) stretched bursts are capped so they can never be the burst that
hits the shutdown bound.  Every outage therefore replays at the
baseline cadence — the adaptive run pays the same replay energy as the
fixed run and strictly less Backup energy, so at equal harvested energy
it completes at least as many instructions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum

from repro.harvest.intermittent import (
    DEFAULT_CHARGE_BACKOFF,
    DEFAULT_CHARGE_RETRIES,
)


class DegradedMode(str, Enum):
    """What the runtime gave up, explicitly, instead of failing
    silently.  Values match the engines' tally keys and the ``mode``
    field of ``env.degraded`` events."""

    SKIPPED_CHECKPOINT = "skipped_checkpoint"
    DEFERRED_COMMIT = "deferred_commit"
    FAIL_STOP = "fail_stop"


@dataclass(frozen=True)
class AdaptivePolicy:
    """Headroom-aware degradation knobs.

    ``max_period`` — ceiling on the stretched checkpoint period (in
    units of instructions, like the baseline period it multiplies
    from).  ``tighten_below`` — headroom fraction (of the capacitor's
    usable window) below which the cadence snaps back to the baseline.
    ``defer_below`` — headroom fraction below which a due host NVImage
    write is postponed rather than risking a mid-write outage.
    ``max_charge_retries`` / ``charge_backoff`` — bounded
    retry-with-backoff for charge windows that fall short of the
    restart threshold (see
    :func:`repro.harvest.intermittent.charge_with_retry`).
    """

    max_period: int = 16
    tighten_below: float = 0.25
    defer_below: float = 0.10
    max_charge_retries: int = DEFAULT_CHARGE_RETRIES
    charge_backoff: float = DEFAULT_CHARGE_BACKOFF

    def __post_init__(self) -> None:
        if self.max_period < 1:
            raise ValueError("max_period must be >= 1")
        if not 0.0 < self.tighten_below < 1.0:
            raise ValueError("tighten_below must be in (0, 1)")
        if not 0.0 <= self.defer_below <= self.tighten_below:
            raise ValueError("need 0 <= defer_below <= tighten_below")
        if self.max_charge_retries < 0:
            raise ValueError("max_charge_retries cannot be negative")
        if self.charge_backoff < 1.0:
            raise ValueError("charge_backoff must be >= 1")

    def period_for(self, frac: float, base_period: int = 1) -> int:
        """The checkpoint period at headroom fraction ``frac``.

        At or below ``tighten_below`` (or for a NaN fraction) the
        baseline period is returned — the degradation never *adds*
        replay risk when energy is scarce.  Above it the period scales
        linearly up to ``max(base_period, max_period)`` at a full
        buffer.
        """
        if math.isnan(frac) or frac <= self.tighten_below:
            return base_period
        top = max(base_period, self.max_period)
        if frac >= 1.0:
            return top
        scaled = (frac - self.tighten_below) / (1.0 - self.tighten_below)
        return base_period + int((top - base_period) * scaled)


class AdaptiveCheckpointer:
    """A headroom-aware wrapper around
    :class:`repro.durability.Checkpointer` for the cycle-accurate
    engine.

    Delegates the actual NVImage commits (and their telemetry) to the
    wrapped checkpointer's store, but decides *when* adaptively:

    * while the buffer is charged, the effective period stretches up to
      ``policy.max_period`` — skipped baseline boundaries are tallied
      as ``skipped_checkpoint``;
    * when a write comes due with headroom below ``policy.defer_below``,
      it is postponed until the voltage recovers (``deferred_commit``)
      — an outage boundary or the halt boundary always flushes it, so
      durability is delayed, never lost;
    * outage-boundary and final-halt images delegate unchanged, which
      keeps resume semantics identical to the plain checkpointer's.
    """

    def __init__(self, inner, policy: AdaptivePolicy | None = None) -> None:
        self.inner = inner
        self.policy = policy or AdaptivePolicy()
        #: Degraded-mode tallies attributable to host-image cadence.
        self.deferred = 0
        self.skipped = 0
        self._pending = False

    # The resume helpers and tests reach these on a plain Checkpointer;
    # mirror them so the wrapper is a drop-in.
    @property
    def store(self):
        return self.inner.store

    @property
    def telemetry(self):
        return self.inner.telemetry

    @property
    def commits(self) -> int:
        return self.inner.commits

    @property
    def _last_count(self) -> int:
        return self.inner._last_count

    @_last_count.setter
    def _last_count(self, value: int) -> None:
        self.inner._last_count = value

    def _headroom_fraction(self, run) -> float:
        buffer = run.config.buffer
        window = buffer.window_energy
        return buffer.headroom / window if window > 0.0 else 0.0

    def _note(self, run, mode: str, count: int = 1) -> None:
        run.degraded[mode] += count
        obs = self.inner._resolve_obs()
        if obs is not None:
            obs.counter(f"env.degraded.{mode}").inc(count)
            obs.emit(
                "env.degraded",
                run.time,
                mode=mode,
                voltage=run.config.buffer.voltage,
                count=count,
            )

    def _write(self, run) -> None:
        from repro.durability.checkpoint import capture_intermittent

        base = self.inner.policy.period
        since = run.executed - self.inner._last_count
        skipped = since // base - 1
        if skipped > 0:
            self.skipped += skipped
            self._note(run, DegradedMode.SKIPPED_CHECKPOINT.value, skipped)
        self.inner._commit(capture_intermittent(run, phase="powered"), run.time)
        self.inner._last_count = run.executed
        self._pending = False

    # ------------------------------------------------------------------
    # Engine hooks (same surface as Checkpointer)
    # ------------------------------------------------------------------

    def on_commit(self, run) -> None:
        if run.mouse.controller.halted:
            # Final image always lands, exactly as the plain policy.
            self.inner.on_commit(run)
            self._pending = False
            return
        frac = self._headroom_fraction(run)
        if self._pending:
            if frac >= self.policy.defer_below:
                self._write(run)
            return
        base = self.inner.policy.period
        since = run.executed - self.inner._last_count
        if since < base:
            return
        if frac < self.policy.defer_below:
            # Due, but writing now risks an outage mid-NVImage commit:
            # postpone until headroom recovers (or an outage/halt
            # boundary flushes durably anyway).
            self._pending = True
            self.deferred += 1
            self._note(run, DegradedMode.DEFERRED_COMMIT.value)
            return
        if since < self.policy.period_for(frac, base):
            # Charged: stretch the cadence; the skip is tallied when
            # the stretched write finally lands.
            return
        self._write(run)

    def on_outage(self, run) -> None:
        self.inner.on_outage(run)
        if self.inner.policy.at_outages:
            # The outage image captured everything a deferred periodic
            # image would have.
            self._pending = False

    def on_profile_point(self, run) -> None:
        self.inner.on_profile_point(run)

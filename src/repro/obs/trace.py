"""Instruction-level trace recording, as a consumer of the event stream.

Historically ``TraceRecorder`` re-implemented the fetch/step loop to
observe the machine; it is now a thin adapter: it attaches a telemetry
hub with an in-memory sink, lets the controller run its own loop, and
materialises the ``instr.commit`` events into the familiar
:class:`InstructionRecord` rows.  Anything the recorder can see, every
other sink (JSONL, Perfetto) sees identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.accelerator import Mouse
from repro.core.controller import InstructionBudgetExceeded
from repro.obs.events import INSTR_COMMIT
from repro.obs.sinks import InMemorySink
from repro.obs.telemetry import Telemetry


@dataclass(frozen=True)
class InstructionRecord:
    """One committed (or halting) instruction."""

    index: int  # dynamic instruction number
    pc: int
    text: str
    energy: float  # joules, all categories
    phase_count: int  # microsteps consumed

    def __str__(self) -> str:
        return f"{self.index:6d}  pc={self.pc:5d}  {self.text:40s} {self.energy:.3e} J"


class TraceBudgetExceeded(RuntimeError):
    """The traced run exceeded its instruction budget.

    Unlike a plain abort, the records captured before the overrun are
    carried on the exception (``exc.records``) so callers can inspect
    where the program was spinning.
    """

    def __init__(self, message: str, records: list[InstructionRecord]) -> None:
        super().__init__(message)
        self.records = records


class TraceRecorder:
    """Collects an instruction-level trace of a run."""

    def __init__(self, mouse: Mouse, limit: Optional[int] = None) -> None:
        """``limit`` caps the number of recorded instructions (the run
        still completes; later records are dropped)."""
        self.mouse = mouse
        self.limit = limit
        self.records: list[InstructionRecord] = []

    def _collect(self, sink: InMemorySink) -> list[InstructionRecord]:
        records = []
        for index, event in enumerate(sink.events):
            if self.limit is not None and index >= self.limit:
                break
            d = event.data
            records.append(
                InstructionRecord(
                    index=index,
                    pc=d["pc"],
                    text=d["text"],
                    energy=d["energy"],
                    phase_count=d["microsteps"],
                )
            )
        return records

    def run(self, max_instructions: int = 10_000_000) -> list[InstructionRecord]:
        sink = InMemorySink(kinds=(INSTR_COMMIT,))
        previous = self.mouse.telemetry
        self.mouse.attach_telemetry(Telemetry(sink))
        try:
            self.mouse.controller.run(max_instructions=max_instructions)
        except InstructionBudgetExceeded as exc:
            self.records = self._collect(sink)
            raise TraceBudgetExceeded(
                f"trace run exceeded the instruction budget: {exc}", self.records
            ) from exc
        finally:
            self.mouse.attach_telemetry(previous)
        self.records = self._collect(sink)
        return self.records

    def render(self, head: int = 20, tail: int = 5) -> str:
        """A human-readable listing (head ... tail)."""
        lines = [str(r) for r in self.records]
        if len(lines) <= head + tail:
            return "\n".join(lines)
        omitted = len(lines) - head - tail
        return "\n".join(
            lines[:head] + [f"   ... {omitted} instructions omitted ..."] + lines[-tail:]
        )

    # -- aggregate views ------------------------------------------------

    def energy_by_mnemonic(self) -> dict[str, float]:
        """Total energy grouped by instruction mnemonic."""
        out: dict[str, float] = {}
        for record in self.records:
            mnemonic = record.text.split()[0]
            out[mnemonic] = out.get(mnemonic, 0.0) + record.energy
        return out

    def hottest(self, n: int = 5) -> list[InstructionRecord]:
        """The n most energy-hungry recorded instructions."""
        return sorted(self.records, key=lambda r: r.energy, reverse=True)[:n]

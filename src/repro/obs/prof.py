"""Hierarchical energy-and-latency attribution (`repro.obs.prof`).

The run-level :class:`~repro.energy.metrics.Breakdown` answers *how
much* energy a run burned; this module answers *where*.  Every charge
the :class:`~repro.energy.metrics.EnergyLedger` records is attributed
to a stack of compile-time scopes (classifier > layer > macro),
recorded by :class:`~repro.compile.builder.ProgramBuilder` as macros
open and close, and carried on the
:class:`~repro.core.program.Program` — attribution needs no
execution-time guessing, because every pc maps to the scope that
emitted it.

Exactness
---------
Each profiler node owns a full :class:`Breakdown`, and a charge is
applied to **every node on the current path, root included**, via the
same :func:`repro.energy.metrics.accumulate` primitive the ledger
itself uses.  The root node therefore replays the run's exact ``+=``
sequence, making ``profiler.root == run.breakdown`` **bit-exact** —
not approximately, not within an epsilon (float addition is not
associative, so a sum over leaves could never promise that).

Output
------
* :meth:`EnergyProfiler.table` / :meth:`render` — per-scope tables.
* :meth:`EnergyProfiler.write_collapsed` — collapsed-stack ("folded")
  flamegraph files: one ``frame;frame;frame value`` line per scope,
  with integer *self* values (energy in attojoules, time in
  picoseconds).  The format is read natively by speedscope, Brendan
  Gregg's ``flamegraph.pl``, and ``inferno``.
* :func:`validate_collapsed` — a lint pass over such a file (used by
  ``make obs-smoke``).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.energy.metrics import Breakdown, Category, accumulate

#: Integer scales for collapsed-stack values (flamegraph tools want ints).
_METRIC_SCALES = {
    "energy": 1e18,  # joules -> attojoules
    "time": 1e12,  # seconds -> picoseconds
}


@dataclass
class ScopeRow:
    """One row of the attribution table."""

    path: tuple[str, ...]
    breakdown: Breakdown
    self_energy: float
    self_latency: float

    @property
    def name(self) -> str:
        return "/".join(self.path) if self.path else "(run)"


class EnergyProfiler:
    """Attributes ledger charges to an interned tree of scopes.

    The profiler is engine-agnostic: the cycle-accurate controller
    points it at the committing pc's compile-time scope, the
    closed-form :class:`~repro.harvest.intermittent.ProfileRun` points
    it at the current segment label.  Either way the ledger's
    :meth:`~repro.energy.metrics.EnergyLedger.charge` mirrors into
    :meth:`record`, which walks the current path.
    """

    def __init__(self, root_name: str = "run") -> None:
        self.root_name = root_name
        self._parents: list[int] = [-1]
        self._names: list[str] = [""]
        self._interned: dict[tuple[int, str], int] = {}
        self._stats: list[Breakdown] = [Breakdown()]
        self._self_energy: list[float] = [0.0]
        self._self_latency: list[float] = [0.0]
        # Root-to-node id chains, cached per node.
        self._chains: list[tuple[int, ...]] = [(0,)]
        self._path: tuple[int, ...] = (0,)
        self._leaf: int = 0

    # ------------------------------------------------------------------
    # Scope interning
    # ------------------------------------------------------------------

    def child(self, parent: int, name: str) -> int:
        key = (parent, name)
        nid = self._interned.get(key)
        if nid is None:
            nid = len(self._names)
            self._parents.append(parent)
            self._names.append(name)
            self._interned[key] = nid
            self._stats.append(Breakdown())
            self._self_energy.append(0.0)
            self._self_latency.append(0.0)
            self._chains.append(self._chains[parent] + (nid,))
        return nid

    def scope_id(self, path: Sequence[str]) -> int:
        """Intern a full root-relative path, returning its node id."""
        nid = 0
        for name in path:
            nid = self.child(nid, name)
        return nid

    def index_program(
        self, program, prefix: Sequence[str] = ()
    ) -> list[int]:
        """Map a program's scope-table ids to profiler node ids.

        Returns ``table`` such that ``table[program.scope_ids[pc]]`` is
        the profiler node for the instruction at ``pc``.  ``prefix``
        nests the whole program under extra frames (typically the
        program name), so two programs profiled into one profiler stay
        distinguishable.
        """
        base = self.scope_id(prefix)
        scopes = program.scope_table
        table = [0] * len(scopes)
        table[0] = base
        # Scope tables are topologically ordered (parents precede
        # children by construction), so one forward pass suffices.
        for sid in range(1, len(scopes)):
            table[sid] = self.child(table[scopes.parents[sid]], scopes.names[sid])
        return table

    # ------------------------------------------------------------------
    # Hot path (mirrored from EnergyLedger)
    # ------------------------------------------------------------------

    def set_scope(self, nid: int) -> None:
        """Make ``nid`` the attribution target for subsequent charges."""
        self._leaf = nid
        self._path = self._chains[nid]

    def record(self, category: Category, energy: float, latency: float) -> None:
        stats = self._stats
        for nid in self._path:
            accumulate(stats[nid], category, energy, latency)
        self._self_energy[self._leaf] += energy
        self._self_latency[self._leaf] += latency

    def count_instructions(self, n: int) -> None:
        stats = self._stats
        for nid in self._path:
            stats[nid].instructions += n

    def count_restart(self) -> None:
        stats = self._stats
        for nid in self._path:
            stats[nid].restarts += 1

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    @property
    def root(self) -> Breakdown:
        """The whole-run breakdown (bit-exact vs. the ledger's)."""
        return self._stats[0]

    def node_path(self, nid: int) -> tuple[str, ...]:
        return tuple(self._names[i] for i in self._chains[nid][1:])

    def rows(self) -> list[ScopeRow]:
        """All scopes that saw any charge, root first, then by energy."""
        out = [
            ScopeRow(
                path=self.node_path(nid),
                breakdown=self._stats[nid],
                self_energy=self._self_energy[nid],
                self_latency=self._self_latency[nid],
            )
            for nid in range(len(self._names))
            if nid == 0
            or self._stats[nid].total_energy > 0
            or self._stats[nid].total_latency > 0
            or self._stats[nid].instructions > 0
        ]
        return [out[0]] + sorted(
            out[1:], key=lambda r: r.breakdown.total_energy, reverse=True
        )

    def table(self, top: Optional[int] = None) -> list[ScopeRow]:
        rows = self.rows()
        return rows if top is None else rows[: top + 1]

    def render(self, top: int = 20) -> str:
        """Human-readable attribution table."""
        rows = self.table(top)
        total = self.root.total_energy or 1.0
        lines = [
            f"{'scope':<48} {'energy':>12} {'%':>6} "
            f"{'self':>12} {'time':>10} {'instr':>8}"
        ]
        for row in rows:
            b = row.breakdown
            lines.append(
                f"{row.name[:48]:<48} {b.total_energy:>12.4e} "
                f"{100.0 * b.total_energy / total:>5.1f}% "
                f"{row.self_energy:>12.4e} {b.total_latency:>10.3e} "
                f"{b.instructions:>8d}"
            )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Flamegraphs
    # ------------------------------------------------------------------

    def flamegraph_lines(self, metric: str = "energy") -> list[str]:
        """Collapsed-stack lines with integer self values.

        ``metric`` is ``"energy"`` (attojoules) or ``"time"``
        (picoseconds).  Every scope contributes its *self* value — the
        part of its inclusive total not attributed to a deeper scope —
        so stack tools reconstruct the inclusive hierarchy themselves.
        """
        scale = _METRIC_SCALES.get(metric)
        if scale is None:
            raise ValueError(
                f"unknown metric {metric!r}; expected one of "
                f"{sorted(_METRIC_SCALES)}"
            )
        values = self._self_energy if metric == "energy" else self._self_latency
        lines = []
        for nid, value in enumerate(values):
            scaled = round(value * scale)
            if scaled <= 0:
                continue
            frames = (self.root_name,) + self.node_path(nid)
            lines.append(f"{';'.join(frames)} {scaled}")
        return lines

    def write_collapsed(
        self, path: Union[str, Path], metric: str = "energy"
    ) -> int:
        """Write a collapsed-stack file; returns the number of stacks."""
        lines = self.flamegraph_lines(metric)
        with open(path, "w", encoding="utf-8") as f:
            for line in lines:
                f.write(line + "\n")
        return len(lines)


def validate_collapsed(path: Union[str, Path]) -> int:
    """Lint a collapsed-stack flamegraph file; returns the stack count.

    Checks the folded format contract: every non-empty line is
    ``frame(;frame)* <positive int>``, frames are non-empty and carry
    no embedded whitespace, and no stack repeats.
    """
    seen: set[str] = set()
    count = 0
    with open(path, "r", encoding="utf-8") as f:
        for lineno, raw in enumerate(f, start=1):
            line = raw.rstrip("\n")
            if not line:
                continue
            stack, sep, value = line.rpartition(" ")
            if not sep or not stack:
                raise ValueError(f"{path}:{lineno}: not 'stack value'")
            if not value.isdigit() or int(value) <= 0:
                raise ValueError(
                    f"{path}:{lineno}: value {value!r} is not a positive int"
                )
            frames = stack.split(";")
            if any(not frame or frame != frame.strip() for frame in frames):
                raise ValueError(f"{path}:{lineno}: malformed frame in {stack!r}")
            if stack in seen:
                raise ValueError(f"{path}:{lineno}: duplicate stack {stack!r}")
            seen.add(stack)
            count += 1
    if count == 0:
        raise ValueError(f"{path}: no stacks")
    return count

"""Event sinks: where telemetry events go.

* :class:`NullSink` — drops everything; a :class:`Telemetry` built on
  it is *disabled* and instrumented code skips event construction
  entirely (the zero-overhead-when-off contract).
* :class:`InMemorySink` — appends events to a list (tests, the trace
  recorder).
* :class:`JsonlSink` — one JSON object per line; floats keep full
  ``repr`` precision, so replaying a log reproduces energy sums
  bit-exactly.
* :class:`PerfettoSink` — Chrome-trace-format JSON (``traceEvents``)
  loadable in https://ui.perfetto.dev or ``chrome://tracing``.
* :class:`TeeSink` — fan out to several sinks at once.
"""

from __future__ import annotations

import io
import json
from typing import Iterable, Optional, Sequence, Union

from repro.obs.events import (
    GAUGE,
    HARVEST_CHARGE,
    HARVEST_OUTAGE,
    HARVEST_RESTORE,
    INSTR_COMMIT,
    POWER_OFF,
    POWER_RESTORE,
    SPAN,
    Event,
)


class Sink:
    """Interface: receives events, may buffer, flushed by close()."""

    def write(self, event: Event) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release resources (idempotent)."""


class NullSink(Sink):
    """Discards events.  `Telemetry(NullSink())` is a disabled hub."""

    def write(self, event: Event) -> None:  # pragma: no cover - never called
        pass


class InMemorySink(Sink):
    """Collects events in a list, optionally filtered by kind."""

    def __init__(self, kinds: Optional[Iterable[str]] = None) -> None:
        self.events: list[Event] = []
        self._kinds = frozenset(kinds) if kinds is not None else None

    def write(self, event: Event) -> None:
        if self._kinds is None or event.kind in self._kinds:
            self.events.append(event)

    def by_kind(self, kind: str) -> list[Event]:
        return [e for e in self.events if e.kind == kind]


class JsonlSink(Sink):
    """Writes one JSON object per event line to a file or stream."""

    def __init__(self, target: Union[str, io.TextIOBase]) -> None:
        if isinstance(target, str):
            self._file = open(target, "w", encoding="utf-8")
            self._owns = True
        else:
            self._file = target
            self._owns = False
        self.count = 0

    def write(self, event: Event) -> None:
        self._file.write(json.dumps(event.to_json_obj()) + "\n")
        self.count += 1

    def close(self) -> None:
        if self._owns and not self._file.closed:
            self._file.close()
        elif not self._file.closed:
            self._file.flush()


#: Perfetto process ids: wall-clock host spans vs simulated time.
PID_HOST = 1
PID_SIM = 2

_INSTANT_KINDS = {
    POWER_OFF: "power off",
    POWER_RESTORE: "power restore",
    HARVEST_OUTAGE: "outage",
    HARVEST_RESTORE: "restart",
}


class PerfettoSink(Sink):
    """Emits Chrome trace format (the JSON ``traceEvents`` flavour).

    Two tracks: pid 1 carries host wall-clock spans, pid 2 carries the
    simulated-time events (instruction slices, charging windows, power
    markers) and counter tracks for every gauge.  High-frequency
    bookkeeping kinds (``energy``, ``profile.burst``) are deliberately
    not mapped — the JSONL sink is the lossless record; the Perfetto
    file is the visual one.
    """

    def __init__(self, target: Union[str, io.TextIOBase]) -> None:
        self._target = target
        self.trace_events: list[dict] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": PID_HOST,
                "args": {"name": "host (wall clock)"},
            },
            {
                "name": "process_name",
                "ph": "M",
                "pid": PID_SIM,
                "args": {"name": "simulation (sim time)"},
            },
        ]
        self._closed = False

    def write(self, event: Event) -> None:
        converted = self._convert(event)
        if converted is not None:
            self.trace_events.append(converted)

    @staticmethod
    def _us(seconds: float) -> float:
        return seconds * 1e6

    def _convert(self, event: Event) -> Optional[dict]:
        kind, ts, data = event.kind, event.ts, event.data
        if kind == SPAN:
            args = {k: v for k, v in data.items() if k not in ("name", "dur")}
            return {
                "name": str(data["name"]),
                "cat": "host",
                "ph": "X",
                "ts": self._us(ts),
                "dur": self._us(float(data["dur"])),
                "pid": PID_HOST,
                "tid": 1,
                "args": args,
            }
        if kind == INSTR_COMMIT:
            return {
                "name": str(data["text"]).split()[0],
                "cat": "instr",
                "ph": "X",
                "ts": self._us(ts),
                "dur": self._us(float(data["latency"])),
                "pid": PID_SIM,
                "tid": 1,
                "args": {
                    "pc": data["pc"],
                    "text": data["text"],
                    "energy_J": data["energy"],
                    "microsteps": data["microsteps"],
                    "dead": data.get("dead", False),
                },
            }
        if kind == HARVEST_CHARGE:
            return {
                "name": "charging",
                "cat": "harvest",
                "ph": "X",
                "ts": self._us(ts),
                "dur": self._us(float(data["dur"])),
                "pid": PID_SIM,
                "tid": 2,
                "args": {},
            }
        if kind == GAUGE:
            return {
                "name": str(data["name"]),
                "cat": "metric",
                "ph": "C",
                "ts": self._us(ts),
                "pid": PID_SIM,
                "args": {"value": float(data["value"])},
            }
        if kind in _INSTANT_KINDS:
            return {
                "name": _INSTANT_KINDS[kind],
                "cat": "power",
                "ph": "i",
                "ts": self._us(ts),
                "pid": PID_SIM,
                "tid": 1,
                "s": "p",
                "args": dict(data),
            }
        return None

    def to_json_obj(self) -> dict:
        return {"traceEvents": self.trace_events, "displayTimeUnit": "ns"}

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        payload = json.dumps(self.to_json_obj())
        if isinstance(self._target, str):
            with open(self._target, "w", encoding="utf-8") as f:
                f.write(payload)
        else:
            self._target.write(payload)


class TeeSink(Sink):
    """Duplicates every event to each child sink."""

    def __init__(self, children: Sequence[Sink]) -> None:
        self.children = list(children)

    def write(self, event: Event) -> None:
        for child in self.children:
            child.write(event)

    def close(self) -> None:
        for child in self.children:
            child.close()

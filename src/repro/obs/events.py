"""The telemetry event taxonomy.

Every event is a ``(kind, ts, data)`` triple.  ``kind`` is a dotted
string from the vocabulary below, ``ts`` is a timestamp in **seconds**
on the clock of the emitting layer (simulated time for the machine and
harvester, host wall-clock for experiment spans), and ``data`` is a
flat JSON-serialisable mapping.

Kinds
-----

``instr.commit``
    One committed (or halting) instruction of the functional machine:
    ``pc``, ``text`` (disassembly), ``energy`` (J, all categories),
    ``latency`` (s), ``microsteps``, ``dead`` (replay of lost work).
``energy``
    One :meth:`~repro.energy.metrics.EnergyLedger.charge` call:
    ``category``, ``energy`` (J), ``latency`` (s).  Summing these per
    category reproduces the run's :class:`Breakdown` exactly.
``power.off`` / ``power.restore``
    Controller power events: the microstep ``phase`` the outage landed
    on and whether uncommitted work was lost; the restored ``pc`` and
    whether the next instruction is a dead replay.
``harvest.outage`` / ``harvest.charge`` / ``harvest.restore``
    Harvester-level events: capacitor ``voltage`` at shutdown, the
    charging-window duration ``dur`` (s), and the voltage at restart.
``profile.burst``
    One closed-form burst of the aggregate engine: segment ``label``,
    instruction ``count``, forward-progress ``energy`` (J).
``fault.injected`` / ``fault.detected`` / ``fault.recovered``
    Fault-layer events (:mod:`repro.faults`): every injected fault
    names its ``site`` (``gate`` / ``array`` / ``nv`` / ``outage`` /
    ``sensor``) plus site-specific detail (gate name, pc, register,
    tile coordinates); detections and recoveries mark the
    verify-and-retry layer (or a protocol-level recovery) firing.
``lint.report``
    One static-analysis run of :mod:`repro.lint`: the linted
    ``program`` name, its ``errors`` and ``warnings`` counts, and the
    comma-joined ``rules`` that fired (empty for a clean program).
``verify.report``
    One semantic-verification run of :mod:`repro.verify`: the verified
    ``program`` name, its ``errors`` and ``warnings`` counts, and the
    comma-joined ``rules`` that fired (empty for a proven program).
``harden.report``
    One hardening rewrite (:func:`repro.harden.harden_program`): the
    source ``program`` name, the placement counts (``tmr`` groups,
    ``verify`` marks), and the protection ``level`` applied.
``env.degraded``
    One graceful-degradation decision under a harvest environment
    (:mod:`repro.env`): the ``mode`` from the degraded-mode taxonomy
    (``skipped_checkpoint`` / ``deferred_commit`` / ``fail_stop``) plus
    mode-specific detail (capacitor ``voltage``, skipped counts).
``checkpoint.commit``
    One durable NVImage write (:mod:`repro.durability`): the image
    ``seq`` number, the engine discriminator ``image_kind``
    (``intermittent`` / ``profile``; named so because a data key
    ``kind`` would clobber the event kind in the flat wire format),
    and the ``instructions`` count captured.
``gauge``
    A sampled metric value (e.g. the capacitor-voltage timeline):
    ``name``, ``value``.
``span``
    A wall-clock phase of the host program, emitted at exit with its
    start time as ``ts``: ``name``, ``dur`` (s), plus free-form
    attributes.

Unknown kinds are allowed — sinks and the replayer pass them through —
but the fields above are validated by :mod:`repro.obs.schema`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

INSTR_COMMIT = "instr.commit"
ENERGY = "energy"
POWER_OFF = "power.off"
POWER_RESTORE = "power.restore"
HARVEST_OUTAGE = "harvest.outage"
HARVEST_CHARGE = "harvest.charge"
HARVEST_RESTORE = "harvest.restore"
PROFILE_BURST = "profile.burst"
FAULT_INJECTED = "fault.injected"
FAULT_DETECTED = "fault.detected"
FAULT_RECOVERED = "fault.recovered"
LINT_REPORT = "lint.report"
VERIFY_REPORT = "verify.report"
HARDEN_REPORT = "harden.report"
ENV_DEGRADED = "env.degraded"
CHECKPOINT_COMMIT = "checkpoint.commit"
GAUGE = "gauge"
SPAN = "span"

#: Required ``data`` fields per known kind (used by the schema check).
KNOWN_KINDS: dict[str, frozenset[str]] = {
    INSTR_COMMIT: frozenset({"pc", "text", "energy", "latency", "microsteps"}),
    ENERGY: frozenset({"category", "energy", "latency"}),
    POWER_OFF: frozenset({"phase", "lost_work"}),
    POWER_RESTORE: frozenset({"pc"}),
    HARVEST_OUTAGE: frozenset({"voltage"}),
    HARVEST_CHARGE: frozenset({"dur"}),
    HARVEST_RESTORE: frozenset({"voltage"}),
    PROFILE_BURST: frozenset({"label", "count", "energy"}),
    FAULT_INJECTED: frozenset({"site"}),
    FAULT_DETECTED: frozenset({"site"}),
    FAULT_RECOVERED: frozenset({"site"}),
    LINT_REPORT: frozenset({"program", "errors", "warnings"}),
    VERIFY_REPORT: frozenset({"program", "errors", "warnings"}),
    HARDEN_REPORT: frozenset({"program", "level", "tmr", "verify"}),
    ENV_DEGRADED: frozenset({"mode"}),
    CHECKPOINT_COMMIT: frozenset({"seq", "image_kind"}),
    GAUGE: frozenset({"name", "value"}),
    SPAN: frozenset({"name", "dur"}),
}


@dataclass(frozen=True)
class Event:
    """One telemetry event."""

    kind: str
    ts: float
    data: Mapping[str, Any] = field(default_factory=dict)

    def to_json_obj(self) -> dict[str, Any]:
        """Flat dict form used by the JSONL wire format.

        ``kind`` and ``ts`` are reserved keys and always win: a data
        field under either name cannot clobber the envelope (emitters
        should rename such fields, e.g. ``image_kind``).
        """
        out: dict[str, Any] = {"kind": self.kind, "ts": self.ts}
        out.update(self.data)
        # Re-assigning keeps the envelope keys' leading position while
        # restoring their values if the data mapping collided.
        out["kind"] = self.kind
        out["ts"] = self.ts
        return out

    @classmethod
    def from_json_obj(cls, obj: Mapping[str, Any]) -> "Event":
        data = {k: v for k, v in obj.items() if k not in ("kind", "ts")}
        return cls(kind=str(obj["kind"]), ts=float(obj["ts"]), data=data)

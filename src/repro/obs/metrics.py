"""Metric primitives: counters, gauges, histograms.

These aggregate in-process regardless of whether a sink is attached —
they are cheap (a few attribute updates) and feed the run manifest's
"peak metrics" section.  A :class:`Gauge` additionally emits a
``gauge`` event per sample when its owning telemetry hub has a sink,
so sampled timelines (the capacitor voltage) appear as counter tracks
in Perfetto.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.telemetry import Telemetry


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only increase")
        self.value += amount

    def snapshot(self) -> float:
        return self.value


class Gauge:
    """A sampled value with last/min/max tracking."""

    __slots__ = ("name", "last", "min", "max", "samples", "_telemetry")

    def __init__(self, name: str, telemetry: "Optional[Telemetry]" = None) -> None:
        self.name = name
        self.last: Optional[float] = None
        self.min = math.inf
        self.max = -math.inf
        self.samples = 0
        self._telemetry = telemetry

    def set(self, value: float, ts: float = 0.0) -> None:
        self.last = value
        self.samples += 1
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        t = self._telemetry
        if t is not None:
            t.emit("gauge", ts, name=self.name, value=value)

    def snapshot(self) -> dict:
        return {
            "last": self.last,
            "min": None if self.samples == 0 else self.min,
            "max": None if self.samples == 0 else self.max,
            "samples": self.samples,
        }


class Histogram:
    """Log2-bucketed histogram of positive observations.

    Bucket ``e`` counts observations ``v`` with ``2**e <= v < 2**(e+1)``
    (zero and negative values land in a dedicated underflow bucket).
    Log2 buckets suit the quantities observed here — outage durations
    and span times span many orders of magnitude.
    """

    __slots__ = ("name", "count", "total", "min", "max", "buckets")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.buckets: dict[int, int] = {}

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        exponent = (
            -1075 if value <= 0.0 else int(math.floor(math.log2(value)))
        )
        self.buckets[exponent] = self.buckets.get(exponent, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> Optional[float]:
        """Approximate q-quantile from the log2 buckets.

        Returns the upper edge of the bucket containing the q-th
        observation, clamped to the observed [min, max] — so the error
        is at most one octave, and q=0 / q=1 return the exact extremes.
        None when nothing was observed.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return None
        rank = max(1, math.ceil(q * self.count))
        seen = 0
        for exponent in sorted(self.buckets):
            seen += self.buckets[exponent]
            if seen >= rank:
                if exponent == -1075:
                    return max(0.0, self.min)
                upper = 2.0 ** (exponent + 1)
                return min(max(upper, self.min), self.max)
        return self.max  # pragma: no cover - counts always sum to count

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": None if self.count == 0 else self.min,
            "max": None if self.count == 0 else self.max,
            "mean": self.mean,
            "buckets": {str(k): v for k, v in sorted(self.buckets.items())},
        }

"""The telemetry hub and the ambient-telemetry context.

A :class:`Telemetry` owns one sink (possibly a tee) and a registry of
metric primitives.  The zero-overhead contract: a hub whose sink is
``None`` (or a :class:`NullSink`) reports ``enabled == False``, and
every instrumented hot path guards with a single ``is None`` check
before building any event — so disabled telemetry costs one pointer
comparison per site and allocates nothing.

The *ambient* hub (:func:`current` / :func:`use`) lets deeply nested
code — the experiment modules build their own ``ProfileRun`` instances
many layers below the CLI — pick up the active hub without threading a
parameter through every signature::

    with obs.use(Telemetry(JsonlSink("events.jsonl"))) as t:
        fig9_latency_sweep.main()   # engines see t via obs.current()
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator, Optional

from repro.obs.events import SPAN, Event
from repro.obs.metrics import Counter, Gauge, Histogram
from repro.obs.sinks import NullSink, Sink


class Telemetry:
    """Event hub + metric registry with a pluggable sink."""

    def __init__(self, sink: Optional[Sink] = None) -> None:
        if sink is None or isinstance(sink, NullSink):
            self._sink: Optional[Sink] = None
        else:
            self._sink = sink
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self.events_emitted = 0
        #: Path of the JSONL event log this hub writes, when built by
        #: :func:`from_paths`.  Fan-out workers derive their per-worker
        #: shard paths from it (see :mod:`repro.obs.fanout`).
        self.events_path: Optional[str] = None

    # -- events ----------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self._sink is not None

    def emit(self, kind: str, ts: float, **data) -> None:
        """Send one event to the sink (no-op when disabled)."""
        if self._sink is None:
            return
        self._sink.write(Event(kind, ts, data))
        self.events_emitted += 1

    def emit_event(self, event: Event) -> None:
        if self._sink is None:
            return
        self._sink.write(event)
        self.events_emitted += 1

    # -- metrics ---------------------------------------------------------

    def counter(self, name: str) -> Counter:
        try:
            return self._counters[name]
        except KeyError:
            c = self._counters[name] = Counter(name)
            return c

    def gauge(self, name: str) -> Gauge:
        try:
            return self._gauges[name]
        except KeyError:
            g = self._gauges[name] = Gauge(name, telemetry=self)
            return g

    def histogram(self, name: str) -> Histogram:
        try:
            return self._histograms[name]
        except KeyError:
            h = self._histograms[name] = Histogram(name)
            return h

    def snapshot(self) -> dict:
        """All metric values, for manifests and summaries."""
        return {
            "counters": {n: c.snapshot() for n, c in self._counters.items()},
            "gauges": {n: g.snapshot() for n, g in self._gauges.items()},
            "histograms": {
                n: h.snapshot() for n, h in self._histograms.items()
            },
            "events_emitted": self.events_emitted,
        }

    # -- spans -----------------------------------------------------------

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[None]:
        """Wall-clock phase timing; emits a ``span`` event at exit and
        records the duration in the ``span.<name>`` histogram."""
        start_wall = time.time()
        start = time.perf_counter()
        try:
            yield
        finally:
            dur = time.perf_counter() - start
            self.histogram(f"span.{name}").observe(dur)
            if self._sink is not None:
                self.emit(SPAN, start_wall, name=name, dur=dur, **attrs)

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        if self._sink is not None:
            self._sink.close()


def from_paths(
    events: Optional[str] = None, trace: Optional[str] = None
) -> Telemetry:
    """A hub writing a JSONL log and/or a Perfetto trace.

    With neither path given the returned hub is disabled, so callers
    can use the result unconditionally.  Call :meth:`Telemetry.close`
    (after the run) to flush the files.
    """
    from repro.obs.sinks import JsonlSink, PerfettoSink, TeeSink

    sinks: list[Sink] = []
    if events:
        sinks.append(JsonlSink(events))
    if trace:
        sinks.append(PerfettoSink(trace))
    if not sinks:
        return Telemetry()
    hub = Telemetry(sinks[0] if len(sinks) == 1 else TeeSink(sinks))
    hub.events_path = events or None
    return hub


#: Process-wide disabled hub: the default ambient telemetry.
DISABLED = Telemetry()

_current: Telemetry = DISABLED


def current() -> Telemetry:
    """The ambient telemetry hub (a disabled hub by default)."""
    return _current


@contextmanager
def use(telemetry: Telemetry) -> Iterator[Telemetry]:
    """Install ``telemetry`` as the ambient hub for the duration."""
    global _current
    previous = _current
    _current = telemetry
    try:
        yield telemetry
    finally:
        _current = previous

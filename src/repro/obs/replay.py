"""Replay a JSONL event log into aggregate views.

The offline half of the telemetry layer: ``python -m repro stats
events.jsonl`` reads a log produced with ``--events`` and rebuilds the
aggregates that used to require re-running the simulation —
per-category energy/latency sums (bit-exact against the run's
:class:`Breakdown`, because ``energy`` events mirror every ledger
charge in order), energy by mnemonic, the hottest instructions, and
the outage-duration histogram.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Union

from repro.experiments._format import format_table, si
from repro.obs import events as ev
from repro.obs.metrics import Histogram


@dataclass
class ReplayStats:
    """Aggregates reconstructed from one event log."""

    events: int = 0
    energy_by_category: dict[str, float] = field(default_factory=dict)
    latency_by_category: dict[str, float] = field(default_factory=dict)
    energy_by_mnemonic: dict[str, float] = field(default_factory=dict)
    instructions_by_mnemonic: dict[str, int] = field(default_factory=dict)
    hottest: list[dict] = field(default_factory=list)
    outages: int = 0
    restarts: int = 0
    checkpoints: int = 0
    checkpoint_kinds: dict[str, int] = field(default_factory=dict)
    charging_windows: Histogram = field(
        default_factory=lambda: Histogram("harvest.off_time")
    )
    spans: dict[str, float] = field(default_factory=dict)
    vcap_min: float = float("inf")
    vcap_max: float = float("-inf")

    @property
    def total_energy(self) -> float:
        return sum(
            v for k, v in self.energy_by_category.items() if k != "charging"
        )

    @property
    def total_latency(self) -> float:
        return sum(self.latency_by_category.values())


def replay(path: Union[str, Path], top: int = 10) -> ReplayStats:
    """Stream the log once, accumulating every aggregate view."""
    stats = ReplayStats()
    hottest: list[tuple[float, int, dict]] = []  # (energy, order, record)
    with open(path, "r", encoding="utf-8") as f:
        for order, line in enumerate(f):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"line {order + 1}: not JSON ({exc})") from exc
            if not isinstance(obj, dict):
                raise ValueError(f"line {order + 1}: not a JSON object")
            stats.events += 1
            kind = obj.get("kind")
            if kind == ev.ENERGY:
                category = obj["category"]
                stats.energy_by_category[category] = (
                    stats.energy_by_category.get(category, 0.0) + obj["energy"]
                )
                stats.latency_by_category[category] = (
                    stats.latency_by_category.get(category, 0.0) + obj["latency"]
                )
            elif kind == ev.INSTR_COMMIT:
                mnemonic = str(obj["text"]).split()[0]
                stats.energy_by_mnemonic[mnemonic] = (
                    stats.energy_by_mnemonic.get(mnemonic, 0.0) + obj["energy"]
                )
                stats.instructions_by_mnemonic[mnemonic] = (
                    stats.instructions_by_mnemonic.get(mnemonic, 0) + 1
                )
                hottest.append((obj["energy"], order, obj))
                if len(hottest) > 4 * max(top, 1):
                    hottest.sort(key=lambda t: (-t[0], t[1]))
                    del hottest[max(top, 1):]
            elif kind == ev.PROFILE_BURST:
                label = obj["label"] or "(unlabelled)"
                stats.energy_by_mnemonic[label] = (
                    stats.energy_by_mnemonic.get(label, 0.0) + obj["energy"]
                )
                stats.instructions_by_mnemonic[label] = (
                    stats.instructions_by_mnemonic.get(label, 0) + obj["count"]
                )
            elif kind == ev.CHECKPOINT_COMMIT:
                stats.checkpoints += 1
                image_kind = str(obj.get("image_kind", "?"))
                stats.checkpoint_kinds[image_kind] = (
                    stats.checkpoint_kinds.get(image_kind, 0) + 1
                )
            elif kind == ev.HARVEST_OUTAGE:
                stats.outages += 1
            elif kind == ev.HARVEST_RESTORE:
                stats.restarts += 1
            elif kind == ev.HARVEST_CHARGE:
                stats.charging_windows.observe(obj["dur"])
            elif kind == ev.GAUGE and obj.get("name") == "harvest.vcap":
                value = obj["value"]
                stats.vcap_min = min(stats.vcap_min, value)
                stats.vcap_max = max(stats.vcap_max, value)
            elif kind == ev.SPAN:
                name = obj["name"]
                stats.spans[name] = stats.spans.get(name, 0.0) + obj["dur"]
    hottest.sort(key=lambda t: (-t[0], t[1]))
    stats.hottest = [record for _, _, record in hottest[:top]]
    return stats


def render(stats: ReplayStats, top: int = 10) -> str:
    """Human-readable report of the replayed aggregates."""
    out = [f"{stats.events:,} events replayed"]

    if stats.energy_by_category:
        out.append("\nenergy / latency by category:")
        rows = []
        for category in sorted(
            stats.energy_by_category, key=stats.energy_by_category.get, reverse=True
        ):
            rows.append(
                (
                    category,
                    repr(stats.energy_by_category[category]),
                    si(stats.latency_by_category.get(category, 0.0), "s"),
                )
            )
        rows.append(("TOTAL", repr(stats.total_energy), si(stats.total_latency, "s")))
        out.append(format_table(["category", "energy (J, exact)", "latency"], rows))

    if stats.energy_by_mnemonic:
        out.append("\nenergy by mnemonic / segment:")
        rows = [
            (
                name,
                stats.instructions_by_mnemonic.get(name, 0),
                si(stats.energy_by_mnemonic[name], "J"),
            )
            for name in sorted(
                stats.energy_by_mnemonic,
                key=stats.energy_by_mnemonic.get,
                reverse=True,
            )
        ]
        out.append(format_table(["mnemonic", "instructions", "energy"], rows))

    if stats.hottest:
        out.append(f"\nhottest {len(stats.hottest)} instructions:")
        rows = [
            (r["pc"], r["text"], si(r["energy"], "J"), r["microsteps"])
            for r in stats.hottest
        ]
        out.append(format_table(["pc", "text", "energy", "microsteps"], rows))

    if stats.charging_windows.count:
        h = stats.charging_windows
        out.append(
            f"\noutage/charging histogram: {h.count} windows, "
            f"mean {si(h.mean, 's')}, min {si(h.min, 's')}, max {si(h.max, 's')}"
        )
        rows = [
            (f"[2^{e}, 2^{e + 1}) s", count)
            for e, count in sorted(h.buckets.items())
        ]
        out.append(format_table(["off-time bucket", "windows"], rows))

    if stats.outages or stats.restarts:
        out.append(f"\noutages: {stats.outages}   restarts: {stats.restarts}")
    if stats.checkpoints:
        kinds = ", ".join(
            f"{k}: {n}" for k, n in sorted(stats.checkpoint_kinds.items())
        )
        out.append(f"checkpoints committed: {stats.checkpoints} ({kinds})")
    if stats.vcap_min != float("inf"):
        out.append(
            f"capacitor voltage: min {stats.vcap_min * 1e3:.1f} mV, "
            f"max {stats.vcap_max * 1e3:.1f} mV"
        )
    if stats.spans:
        out.append("\nwall-clock spans:")
        rows = [(name, f"{dur:.3f} s") for name, dur in stats.spans.items()]
        out.append(format_table(["span", "wall time"], rows))
    return "\n".join(out)

"""Run manifests: the reproducibility record of one invocation.

A manifest is a single ``manifest.json`` capturing everything needed
to re-run and audit an experiment: the exact command and config, the
git commit (and whether the tree was dirty), interpreter/platform
versions, the device-parameter tables the numbers came from, the seed,
wall time, and the peak metrics of the attached telemetry hub.
"""

from __future__ import annotations

import dataclasses
import json
import platform
import subprocess
import sys
import time
from pathlib import Path
from typing import Any, Optional

from repro.devices.parameters import ALL_TECHNOLOGIES, DeviceParameters

SCHEMA = "repro.obs.manifest/v1"


def _repo_root() -> Path:
    # src/repro/obs/manifest.py -> repo root is four levels up.
    return Path(__file__).resolve().parents[3]


def git_state() -> dict:
    """Current commit SHA and dirty flag; {} when git is unavailable."""
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=_repo_root(),
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        ).stdout.strip()
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=_repo_root(),
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        ).stdout
        return {"sha": sha, "dirty": bool(status.strip())}
    except (OSError, subprocess.SubprocessError):
        return {}


def _device_params(params: DeviceParameters) -> dict:
    out = dataclasses.asdict(params)
    out["cell_kind"] = params.cell_kind.value
    return out


def build_manifest(
    *,
    command: list[str],
    config: Optional[dict] = None,
    seed: Optional[int] = None,
    wall_time_s: Optional[float] = None,
    metrics: Optional[dict] = None,
    extra: Optional[dict] = None,
) -> dict[str, Any]:
    """The manifest payload as a plain dict (not yet written)."""
    manifest: dict[str, Any] = {
        "schema": SCHEMA,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "command": command,
        "config": config or {},
        "seed": seed,
        "git": git_state(),
        "python": sys.version,
        "platform": platform.platform(),
        "device_parameters": [_device_params(p) for p in ALL_TECHNOLOGIES],
    }
    if wall_time_s is not None:
        manifest["wall_time_s"] = wall_time_s
    if metrics is not None:
        manifest["metrics"] = metrics
    if extra:
        manifest.update(extra)
    return manifest


def write_manifest(directory: str | Path, **kwargs) -> Path:
    """Build and write ``<directory>/manifest.json``; returns its path.

    The write is atomic (temp + fsync + rename), so a crash mid-write
    leaves the previous manifest intact rather than a torn file.
    """
    from repro.durability.atomic import atomic_write_json

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / "manifest.json"
    return atomic_write_json(path, build_manifest(**kwargs), default=str)

"""``repro.obs`` — the observability layer.

Structured telemetry across the three execution layers:

* the functional machine (``instr.commit``, power events, ``energy``
  charges mirrored off the :class:`~repro.energy.metrics.EnergyLedger`),
* the harvester engines (outage / charging-window / restart events and
  a sampled capacitor-voltage timeline),
* the experiment runner (wall-clock spans and run manifests).

Events flow through one :class:`Telemetry` hub into pluggable sinks —
JSONL for lossless logs, Chrome-trace JSON for Perfetto, in-memory for
tests and the trace recorder.  Disabled telemetry (the default) costs
a single pointer comparison per instrumented site and allocates
nothing.  See ``docs/OBSERVABILITY.md``.
"""

from repro.obs.aggregate import MetricAggregator, RingBuffer, Series
from repro.obs.events import Event, KNOWN_KINDS
from repro.obs.export import MetricsServer, profile_json, prometheus_text
from repro.obs.fanout import merge_shards, shard_path, worker_hub
from repro.obs.manifest import build_manifest, git_state, write_manifest
from repro.obs.metrics import Counter, Gauge, Histogram
from repro.obs.prof import EnergyProfiler, ScopeRow, validate_collapsed
from repro.obs.replay import ReplayStats, render, replay
from repro.obs.schema import (
    SchemaError,
    validate_events_jsonl,
    validate_perfetto,
)
from repro.obs.sinks import (
    InMemorySink,
    JsonlSink,
    NullSink,
    PerfettoSink,
    Sink,
    TeeSink,
)
from repro.obs.telemetry import DISABLED, Telemetry, current, from_paths, use
from repro.obs.trace import (
    InstructionRecord,
    TraceBudgetExceeded,
    TraceRecorder,
)

__all__ = [
    "Counter",
    "DISABLED",
    "EnergyProfiler",
    "Event",
    "Gauge",
    "Histogram",
    "InMemorySink",
    "InstructionRecord",
    "JsonlSink",
    "KNOWN_KINDS",
    "MetricAggregator",
    "MetricsServer",
    "NullSink",
    "PerfettoSink",
    "ReplayStats",
    "RingBuffer",
    "SchemaError",
    "ScopeRow",
    "Series",
    "Sink",
    "TeeSink",
    "Telemetry",
    "TraceBudgetExceeded",
    "TraceRecorder",
    "build_manifest",
    "current",
    "from_paths",
    "git_state",
    "merge_shards",
    "profile_json",
    "prometheus_text",
    "render",
    "replay",
    "shard_path",
    "use",
    "validate_collapsed",
    "validate_events_jsonl",
    "validate_perfetto",
    "worker_hub",
    "write_manifest",
]

"""Export layer: Prometheus text format and an opt-in HTTP endpoint.

The outermost of the three observability layers (events → aggregation
→ export).  :func:`prometheus_text` renders a telemetry hub's metric
registry — plus, optionally, a :class:`~repro.obs.aggregate.MetricAggregator`
and an :class:`~repro.obs.prof.EnergyProfiler` — in the Prometheus
text exposition format (version 0.0.4), and :class:`MetricsServer`
serves it from a stdlib ``ThreadingHTTPServer`` so a long sweep can be
scraped (or just curl'd) while it runs:

* ``GET /metrics``  — Prometheus text: counters, gauges, histograms
  with cumulative ``le`` buckets derived from the log2 exponents,
  aggregator quantiles, per-scope energy attribution.
* ``GET /profile``  — the profiler, as JSON rows or a collapsed-stack
  file (``?format=collapsed&metric=energy|time``) ready for
  speedscope.
* ``GET /healthz``  — liveness.

Everything here is stdlib-only and opt-in: nothing imports this module
on the hot path, and no server exists unless the CLI was passed
``--serve-metrics``.
"""

from __future__ import annotations

import dataclasses
import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional
from urllib.parse import parse_qs, urlparse

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_NAME_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_name(name: str, prefix: str = "repro_") -> str:
    """A valid Prometheus metric name for an internal dotted name."""
    out = prefix + _NAME_BAD_CHARS.sub("_", name)
    if not _NAME_OK.match(out):  # leading digit after the prefix, etc.
        out = "_" + out
    return out


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _fmt(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    return repr(float(value))


def _histogram_lines(name: str, snapshot_buckets: dict, count: int, total: float) -> list[str]:
    """Classic Prometheus histogram lines from log2 exponent buckets.

    Bucket exponent ``e`` holds observations in ``[2**e, 2**(e+1))``,
    so its Prometheus upper bound is ``le="2**(e+1)"``; the underflow
    bucket (values <= 0) maps to ``le="0"``.  Buckets are cumulative,
    ending with the mandatory ``+Inf``.
    """
    lines = [f"# TYPE {name} histogram"]
    cumulative = 0
    for exponent in sorted(snapshot_buckets):
        cumulative += snapshot_buckets[exponent]
        le = "0" if exponent <= -1075 else _fmt(2.0 ** (exponent + 1))
        lines.append(f'{name}_bucket{{le="{le}"}} {cumulative}')
    lines.append(f'{name}_bucket{{le="+Inf"}} {count}')
    lines.append(f"{name}_sum {_fmt(total)}")
    lines.append(f"{name}_count {count}")
    return lines


def prometheus_text(
    telemetry, aggregator=None, profiler=None, top_scopes: int = 50
) -> str:
    """Render metrics in the Prometheus text exposition format."""
    lines: list[str] = []
    snap = telemetry.snapshot()

    for raw, value in sorted(snap["counters"].items()):
        name = sanitize_name(raw) + "_total"
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name} {_fmt(value)}")

    for raw, g in sorted(snap["gauges"].items()):
        name = sanitize_name(raw)
        lines.append(f"# TYPE {name} gauge")
        if g["last"] is not None:
            lines.append(f"{name} {_fmt(g['last'])}")
        lines.append(f"{name}_samples {g['samples']}")

    for raw, h in sorted(snap["histograms"].items()):
        name = sanitize_name(raw)
        buckets = {int(k): v for k, v in h["buckets"].items()}
        lines.extend(_histogram_lines(name, buckets, h["count"], h["sum"]))

    lines.append("# TYPE repro_events_emitted_total counter")
    lines.append(f"repro_events_emitted_total {snap['events_emitted']}")

    if aggregator is not None:
        for raw, s in sorted(aggregator.summary().items()):
            name = sanitize_name(raw)
            lines.append(f"# TYPE {name} summary")
            for q in ("p50", "p99"):
                if s[q] is not None:
                    quantile = "0.5" if q == "p50" else "0.99"
                    lines.append(
                        f'{name}{{quantile="{quantile}"}} {_fmt(s[q])}'
                    )
            lines.append(f"{name}_sum {_fmt(s['sum'])}")
            lines.append(f"{name}_count {s['count']}")

    if profiler is not None:
        rows = profiler.table(top_scopes)
        lines.append("# TYPE repro_scope_energy_joules gauge")
        for row in rows:
            scope = _escape_label(row.name)
            lines.append(
                f'repro_scope_energy_joules{{scope="{scope}"}} '
                f"{_fmt(row.breakdown.total_energy)}"
            )
        lines.append("# TYPE repro_scope_latency_seconds gauge")
        for row in rows:
            scope = _escape_label(row.name)
            lines.append(
                f'repro_scope_latency_seconds{{scope="{scope}"}} '
                f"{_fmt(row.breakdown.total_latency)}"
            )
        lines.append("# TYPE repro_scope_instructions gauge")
        for row in rows:
            scope = _escape_label(row.name)
            lines.append(
                f'repro_scope_instructions{{scope="{scope}"}} '
                f"{row.breakdown.instructions}"
            )

    return "\n".join(lines) + "\n"


def profile_json(profiler, top: Optional[int] = None) -> dict:
    """The profiler's attribution table as a JSON-ready object."""
    rows = profiler.table(top)
    return {
        "root_name": profiler.root_name,
        "rows": [
            {
                "scope": row.name,
                "path": list(row.path),
                "energy": row.breakdown.total_energy,
                "latency": row.breakdown.total_latency,
                "self_energy": row.self_energy,
                "self_latency": row.self_latency,
                "instructions": row.breakdown.instructions,
                "breakdown": dataclasses.asdict(row.breakdown),
            }
            for row in rows
        ],
    }


class MetricsServer:
    """Background HTTP server exposing ``/metrics`` and ``/profile``.

    ``port=0`` binds an ephemeral port (read it back from ``.port``),
    which is what the tests use; the CLI default is 9464 (the
    conventional Prometheus-exporter range).  The server runs on a
    daemon thread and never blocks the run it observes.
    """

    def __init__(
        self,
        telemetry,
        aggregator=None,
        profiler=None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.telemetry = telemetry
        self.aggregator = aggregator
        self.profiler = profiler
        server = self

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, fmt, *args):  # silence stderr chatter
                pass

            def _send(self, status: int, content_type: str, body: str) -> None:
                payload = body.encode("utf-8")
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(payload)))
                self.end_headers()
                self.wfile.write(payload)

            def do_GET(self):
                parsed = urlparse(self.path)
                if parsed.path == "/metrics":
                    self._send(
                        200,
                        "text/plain; version=0.0.4; charset=utf-8",
                        prometheus_text(
                            server.telemetry,
                            aggregator=server.aggregator,
                            profiler=server.profiler,
                        ),
                    )
                elif parsed.path == "/profile":
                    if server.profiler is None:
                        self._send(
                            404, "text/plain", "no profiler attached\n"
                        )
                        return
                    query = parse_qs(parsed.query)
                    fmt = query.get("format", ["json"])[0]
                    metric = query.get("metric", ["energy"])[0]
                    if fmt == "collapsed":
                        try:
                            lines = server.profiler.flamegraph_lines(metric)
                        except ValueError as exc:
                            self._send(400, "text/plain", f"{exc}\n")
                            return
                        self._send(
                            200, "text/plain", "\n".join(lines) + "\n"
                        )
                    else:
                        self._send(
                            200,
                            "application/json",
                            json.dumps(profile_json(server.profiler)) + "\n",
                        )
                elif parsed.path == "/healthz":
                    self._send(200, "text/plain", "ok\n")
                else:
                    self._send(404, "text/plain", "not found\n")

        self._httpd = ThreadingHTTPServer((host, port), Handler)
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        host = self._httpd.server_address[0]
        return f"http://{host}:{self.port}"

    def start(self) -> "MetricsServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-metrics-server",
            daemon=True,
        )
        self._thread.start()
        return self

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

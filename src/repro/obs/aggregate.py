"""Bounded in-process aggregation: ring buffers and quantile summaries.

Sweeps and serving loops run for hours and observe millions of values;
this layer keeps a *bounded* live view of them — a fixed-capacity ring
of recent samples per series plus the (already log2-bucketed)
:class:`~repro.obs.metrics.Histogram` for whole-run quantiles — so an
exporter can be scraped at any moment without the process accumulating
unbounded state.  This is the middle of the three observability
layers: events (lossless, on disk) → aggregation (bounded, in memory)
→ export (Prometheus text / profiles).
"""

from __future__ import annotations

import math
from typing import Optional

from repro.obs.metrics import Histogram


class RingBuffer:
    """Fixed-capacity ring of (ts, value) samples (oldest overwritten)."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._ts: list[float] = []
        self._values: list[float] = []
        self._next = 0
        self.pushed = 0

    def __len__(self) -> int:
        return len(self._values)

    def push(self, value: float, ts: float = 0.0) -> None:
        if len(self._values) < self.capacity:
            self._ts.append(ts)
            self._values.append(value)
        else:
            self._ts[self._next] = ts
            self._values[self._next] = value
        self._next = (self._next + 1) % self.capacity
        self.pushed += 1

    def items(self) -> list[tuple[float, float]]:
        """Samples oldest-first."""
        if len(self._values) < self.capacity:
            return list(zip(self._ts, self._values))
        return list(
            zip(
                self._ts[self._next :] + self._ts[: self._next],
                self._values[self._next :] + self._values[: self._next],
            )
        )

    def values(self) -> list[float]:
        return [v for _, v in self.items()]

    def last(self) -> Optional[float]:
        if not self._values:
            return None
        return self._values[(self._next - 1) % len(self._values)]

    def mean(self) -> float:
        return sum(self._values) / len(self._values) if self._values else 0.0

    def min(self) -> float:
        return min(self._values) if self._values else math.inf

    def max(self) -> float:
        return max(self._values) if self._values else -math.inf


class Series:
    """One named series: a sample ring + a whole-run histogram."""

    def __init__(self, name: str, capacity: int = 256) -> None:
        self.name = name
        self.ring = RingBuffer(capacity)
        self.histogram = Histogram(name)

    def observe(self, value: float, ts: float = 0.0) -> None:
        self.ring.push(value, ts)
        self.histogram.observe(value)

    def summary(self) -> dict:
        h = self.histogram
        return {
            "count": h.count,
            "sum": h.total,
            "mean": h.mean,
            "min": None if h.count == 0 else h.min,
            "max": None if h.count == 0 else h.max,
            "p50": h.quantile(0.50),
            "p99": h.quantile(0.99),
            "recent_mean": self.ring.mean(),
            "last": self.ring.last(),
        }


class MetricAggregator:
    """A registry of named series (latency, energy-per-inference, ...).

    The canonical serving-loop usage::

        agg = MetricAggregator()
        for x in batch:
            breakdown = run_one(x)
            agg.observe("inference.energy", breakdown.total_energy)
            agg.observe("inference.latency", breakdown.total_latency)
        agg.summary()["inference.latency"]["p99"]
    """

    def __init__(self, capacity: int = 256) -> None:
        self.capacity = capacity
        self._series: dict[str, Series] = {}

    def series(self, name: str) -> Series:
        try:
            return self._series[name]
        except KeyError:
            s = self._series[name] = Series(name, self.capacity)
            return s

    def observe(self, name: str, value: float, ts: float = 0.0) -> None:
        self.series(name).observe(value, ts)

    def names(self) -> list[str]:
        return sorted(self._series)

    def summary(self) -> dict:
        return {name: self._series[name].summary() for name in self.names()}

"""Telemetry smoke test: a small SVM kernel, fully traced, validated.

    python -m repro.obs.smoke [--events PATH] [--trace PATH]
        [--manifest-dir DIR] [--keep]

Compiles one polynomial-SVM kernel evaluation ``(x . sv + offset)^2``
to a MOUSE program, executes it bit-exactly under an energy harvester
with a deliberately tiny capacitor window (so outages, restores, and
dead replays all occur), with every sink attached.  It then validates
the emitted artifacts:

* the JSONL event log conforms to the event schema,
* its per-category energy sums equal the run's Breakdown to 1e-12 J,
* the Chrome-trace JSON conforms to the Perfetto trace-event schema,
* the in-array result equals the Python reference,
* the attached :class:`~repro.obs.prof.EnergyProfiler` root equals the
  run's Breakdown **bit-exactly** and its collapsed-stack flamegraph
  files pass :func:`~repro.obs.prof.validate_collapsed`,
* the attached checkpointer drove the ``checkpoint.*`` counters and its
  ``checkpoint.commit`` events survive the replay (``stats``) path,
* one live scrape of the :class:`~repro.obs.export.MetricsServer`
  ``/metrics`` endpoint carries the counters and per-scope gauges.

Exit status 0 means the whole telemetry pipeline is healthy; it is
wired into ``make obs-smoke`` (part of ``make test``; ``trace-smoke``
is kept as an alias).
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.compile import arith
from repro.compile.builder import ProgramBuilder
from repro.compile.dot import emit_dot_product
from repro.core.accelerator import Mouse
from repro.devices.parameters import MODERN_STT
from repro.harvest.capacitor import EnergyBuffer
from repro.harvest.intermittent import HarvestingConfig, IntermittentRun
from repro.harvest.source import ConstantPowerSource
from repro.obs.manifest import write_manifest
from repro.obs.replay import replay
from repro.obs.schema import validate_events_jsonl, validate_perfetto
from repro.obs.telemetry import from_paths

#: Category name -> Breakdown attribute, for the sum cross-check.
_ENERGY_ATTRS = {
    "compute": "compute_energy",
    "backup": "backup_energy",
    "dead": "dead_energy",
    "restore": "restore_energy",
}


def build_kernel_machine(bits: int = 3):
    """Compile ``(x . sv + offset)^2`` for small fixed inputs."""
    rng = np.random.default_rng(0)
    x = rng.integers(1, 1 << bits, size=2)
    sv = rng.integers(1, 1 << bits, size=2)
    offset = 2

    builder = ProgramBuilder(tile=0, rows=2048, cols=1, reserved_rows=64)
    builder.activate((0,))
    rows = iter(range(0, 64, 2))
    xs = [builder.word_at([next(rows) for _ in range(bits)]) for _ in x]
    ws = [builder.word_at([next(rows) for _ in range(bits)]) for _ in sv]
    off = builder.word_at([next(rows) for _ in range(2)])
    dot = emit_dot_product(builder, xs, ws)
    shifted = arith.ripple_add(builder, dot, off)
    kernel = arith.square(builder, shifted)
    program = builder.finish()

    machine = Mouse(MODERN_STT, rows=2048, cols=1)
    for word, value in zip(xs + ws + [off], list(x) + list(sv) + [offset]):
        for i, bit in enumerate(word):
            machine.tile(0).set_bit(bit.row, 0, (int(value) >> i) & 1)
    machine.load(program)
    expected = (int(np.dot(x, sv)) + offset) ** 2
    return machine, kernel, expected


def harvesting_config() -> HarvestingConfig:
    """A window barely bigger than the costliest instruction: plenty of
    outages in a short program, exercising every power-event path."""
    return HarvestingConfig(
        source=ConstantPowerSource(2e-9),
        buffer=EnergyBuffer(capacitance=100e-6, v_off=0.00030, v_on=0.00034),
    )


def run_smoke(events: str, trace: str, manifest_dir: str) -> int:
    from repro.durability.checkpoint import Checkpointer, CheckpointPolicy
    from repro.obs.prof import EnergyProfiler, validate_collapsed

    telemetry = from_paths(events=events, trace=trace)
    machine, kernel, expected = build_kernel_machine()
    profiler = EnergyProfiler()
    machine.attach_profiler(profiler)
    base = Path(manifest_dir)
    checkpointer = Checkpointer(
        str(base / "images"),
        CheckpointPolicy(period=256, at_outages=True),
        telemetry=telemetry,
    )

    with telemetry.span("trace-smoke", workload="svm-kernel"):
        run = IntermittentRun(
            machine,
            harvesting_config(),
            telemetry=telemetry,
            vcap_sample_period=16,
            checkpointer=checkpointer,
        )
        breakdown = run.run(max_instructions=1_000_000)
    telemetry.close()

    failures: list[str] = []

    got = 0
    for i, bit in enumerate(kernel):
        got |= machine.tile(0).get_bit(bit.row, 0) << i
    if got != expected:
        failures.append(f"in-array result {got} != python reference {expected}")

    n_events = validate_events_jsonl(events)
    n_trace = validate_perfetto(trace)
    if n_events == 0:
        failures.append("event log is empty")
    if n_trace == 0:
        failures.append("perfetto trace is empty")

    stats = replay(events, top=3)
    for category, attr in _ENERGY_ATTRS.items():
        logged = stats.energy_by_category.get(category, 0.0)
        ledger = getattr(breakdown, attr)
        if abs(logged - ledger) > 1e-12:
            failures.append(
                f"{category} energy: events sum {logged!r} != ledger {ledger!r}"
            )
    if stats.restarts != breakdown.restarts:
        failures.append(
            f"restarts: events {stats.restarts} != ledger {breakdown.restarts}"
        )

    # -- profiler: per-scope attribution must replay the ledger exactly.
    if profiler.root != breakdown:
        failures.append(
            f"profiler root breakdown is not bit-exact: "
            f"{profiler.root} != {breakdown}"
        )
    n_scopes = len(profiler.rows())
    if n_scopes < 3:  # run + macro scopes from the compiled kernel
        failures.append(f"profiler saw only {n_scopes} scopes")
    n_stacks = {}
    for metric in ("energy", "time"):
        flame = str(base / f"flame-{metric}.folded")
        profiler.write_collapsed(flame, metric=metric)
        try:
            n_stacks[metric] = validate_collapsed(flame)
        except (OSError, ValueError) as exc:
            failures.append(f"flamegraph lint ({metric}): {exc}")
            n_stacks[metric] = 0

    # -- checkpointing: counters populated and commit events replayable.
    counters = telemetry.snapshot()["counters"]
    if counters.get("checkpoint.writes", 0) < 1:
        failures.append("checkpoint.writes counter never incremented")
    if counters.get("checkpoint.bytes", 0) <= 0:
        failures.append("checkpoint.bytes counter never incremented")
    if stats.checkpoints != counters.get("checkpoint.writes", 0):
        failures.append(
            f"checkpoint.commit events ({stats.checkpoints}) != "
            f"checkpoint.writes counter ({counters.get('checkpoint.writes')})"
        )
    from repro.obs.replay import render as render_stats

    if "checkpoints committed" not in render_stats(stats, top=0):
        failures.append("stats render does not surface checkpoint counts")

    # -- exporter: one live scrape of /metrics and /profile.
    import urllib.request

    from repro.obs.export import MetricsServer

    server = MetricsServer(telemetry, profiler=profiler, port=0).start()
    try:
        with urllib.request.urlopen(f"{server.url}/metrics", timeout=10) as r:
            scraped = r.read().decode("utf-8")
        with urllib.request.urlopen(f"{server.url}/profile", timeout=10) as r:
            profile_body = r.read().decode("utf-8")
    finally:
        server.close()
    for needle in (
        "repro_checkpoint_writes_total",
        "repro_harvest_outages_total",
        "repro_scope_energy_joules",
        "repro_events_emitted_total",
    ):
        if needle not in scraped:
            failures.append(f"/metrics scrape is missing {needle}")
    if '"rows"' not in profile_body:
        failures.append("/profile response carries no attribution rows")

    manifest_path = write_manifest(
        manifest_dir,
        command=["python", "-m", "repro.obs.smoke"],
        config={"workload": "svm-kernel", "events": events, "trace": trace},
        seed=0,
        metrics=telemetry.snapshot(),
    )

    if failures:
        for failure in failures:
            print(f"obs-smoke FAILED: {failure}", file=sys.stderr)
        return 1
    print(
        f"obs-smoke ok: {breakdown.instructions} instructions, "
        f"{breakdown.restarts} restarts, {n_events} events validated, "
        f"{n_trace} trace events validated, result {got} == {expected}"
    )
    print(
        f"  profiler: {n_scopes} scopes, attribution bit-exact; "
        f"flamegraphs {n_stacks['energy']}/{n_stacks['time']} stacks"
    )
    print(
        f"  checkpoints: {stats.checkpoints} committed; "
        f"/metrics scraped ({len(scraped.splitlines())} lines)"
    )
    print(f"  events:   {events}")
    print(f"  trace:    {trace}")
    print(f"  manifest: {manifest_path}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--events", metavar="PATH")
    parser.add_argument("--trace", metavar="PATH")
    parser.add_argument("--manifest-dir", metavar="DIR")
    args = parser.parse_args(argv)
    if args.events and args.trace and args.manifest_dir:
        return run_smoke(args.events, args.trace, args.manifest_dir)
    with tempfile.TemporaryDirectory(prefix="repro-trace-smoke-") as tmp:
        base = Path(tmp)
        return run_smoke(
            args.events or str(base / "events.jsonl"),
            args.trace or str(base / "trace.json"),
            args.manifest_dir or str(base),
        )


if __name__ == "__main__":
    sys.exit(main())

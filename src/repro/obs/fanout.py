"""Fan-out telemetry: per-worker event shards and deterministic merge.

PR 4's process fan-out silenced telemetry in workers (a forked child
sharing the parent's sink file descriptor would interleave writes and
corrupt the log).  This module gives every worker its *own* JSONL
shard instead:

* Each worker gets a :class:`ShardSink` writing
  ``<events>.shard<worker-id>``; every record is stamped with the
  ``worker`` id and the ``task`` index it was emitted under, and the
  file is flushed per write (pool workers can be terminated without
  running cleanup).
* After the pool drains, the parent calls :func:`merge_shards`, which
  orders all shard records by ``(task, emission order)`` and replays
  them into its own sinks.  A task runs entirely in one worker, so
  this order is **independent of scheduling** — merged logs are
  deterministic up to the ``worker`` field itself, which is kept as
  the one (deliberately) schedule-dependent debugging breadcrumb.
"""

from __future__ import annotations

import glob
import json
import os
from typing import Optional

from repro.obs.events import Event
from repro.obs.sinks import Sink

#: Task index the current worker is executing (stamped into records).
_current_task: int = -1


def set_current_task(index: int) -> None:
    """Record the task index for shard stamping (set by the pool)."""
    global _current_task
    _current_task = index


def shard_path(events_path: str, worker_id: int) -> str:
    return f"{events_path}.shard{worker_id:03d}"


class ShardSink(Sink):
    """One worker's JSONL shard, stamped and flushed per write."""

    def __init__(self, path: str, worker_id: int) -> None:
        self._file = open(path, "w", encoding="utf-8")
        self.worker_id = worker_id
        self.count = 0

    def write(self, event: Event) -> None:
        obj = event.to_json_obj()
        obj["worker"] = self.worker_id
        obj["task"] = _current_task
        self._file.write(json.dumps(obj) + "\n")
        self._file.flush()
        self.count += 1

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()


def worker_hub(events_path: str, worker_id: int):
    """The telemetry hub a forked worker should install as ambient."""
    from repro.obs.telemetry import Telemetry

    hub = Telemetry(ShardSink(shard_path(events_path, worker_id), worker_id))
    # Workers never re-shard: nested fan-out runs serially anyway.
    hub.events_path = None
    return hub


def merge_shards(telemetry) -> dict:
    """Merge worker shards into the parent's sinks; returns stats.

    Records are sorted by ``(task index, emission order)`` — the same
    total order a serial run with per-task logs would produce — then
    replayed through the parent hub (so they reach the JSONL log *and*
    any teed sinks, e.g. the Perfetto trace).  Shard files are removed
    afterwards.  Returns ``{"shards": n, "shard_events": m}``.
    """
    base: Optional[str] = getattr(telemetry, "events_path", None)
    if not base:
        return {"shards": 0, "shard_events": 0}
    paths = sorted(glob.glob(glob.escape(base) + ".shard*"))
    records: list[tuple[int, int, dict]] = []
    for path in paths:
        with open(path, "r", encoding="utf-8") as f:
            for order, line in enumerate(f):
                line = line.strip()
                if not line:
                    continue
                obj = json.loads(line)
                records.append((int(obj.get("task", -1)), order, obj))
    # A task's records live contiguously in one shard, so (task,
    # within-shard order) totally orders them schedule-independently.
    records.sort(key=lambda r: (r[0], r[1]))
    for _, _, obj in records:
        telemetry.emit_event(Event.from_json_obj(obj))
    for path in paths:
        os.remove(path)
    return {"shards": len(paths), "shard_events": len(records)}

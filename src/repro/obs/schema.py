"""Schema validation for emitted telemetry artifacts.

Hand-rolled (no external dependency): validates the JSONL event wire
format against the taxonomy in :mod:`repro.obs.events`, and the
Chrome-trace JSON against the subset of the Trace Event Format that
Perfetto requires (``traceEvents`` array; every event has ``ph`` and a
numeric ``ts``; complete events carry a non-negative ``dur``).
"""

from __future__ import annotations

import json
from numbers import Number
from pathlib import Path
from typing import Union

from repro.obs.events import KNOWN_KINDS

#: Trace-event phases we emit / accept.
_VALID_PHASES = {"B", "E", "X", "i", "I", "C", "M", "b", "e", "n", "s", "t", "f"}


class SchemaError(ValueError):
    """An artifact does not conform to its schema."""


def validate_event_obj(obj: object, where: str = "event") -> None:
    """Validate one decoded JSONL event object."""
    if not isinstance(obj, dict):
        raise SchemaError(f"{where}: expected a JSON object, got {type(obj).__name__}")
    kind = obj.get("kind")
    if not isinstance(kind, str) or not kind:
        raise SchemaError(f"{where}: missing or non-string 'kind'")
    ts = obj.get("ts")
    if not isinstance(ts, Number) or isinstance(ts, bool):
        raise SchemaError(f"{where}: missing or non-numeric 'ts'")
    required = KNOWN_KINDS.get(kind)
    if required is not None:
        missing = required - obj.keys()
        if missing:
            raise SchemaError(
                f"{where}: kind {kind!r} is missing fields {sorted(missing)}"
            )


def validate_events_jsonl(path: Union[str, Path]) -> int:
    """Validate a JSONL event log; returns the number of events."""
    count = 0
    with open(path, "r", encoding="utf-8") as f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                raise SchemaError(f"{path}:{lineno}: invalid JSON: {exc}") from exc
            validate_event_obj(obj, where=f"{path}:{lineno}")
            count += 1
    return count


def validate_trace_event(obj: object, where: str = "traceEvent") -> None:
    if not isinstance(obj, dict):
        raise SchemaError(f"{where}: expected a JSON object")
    ph = obj.get("ph")
    if not isinstance(ph, str) or ph not in _VALID_PHASES:
        raise SchemaError(f"{where}: missing or invalid 'ph' {ph!r}")
    if ph == "M":
        return  # metadata events carry no timestamp
    ts = obj.get("ts")
    if not isinstance(ts, Number) or isinstance(ts, bool):
        raise SchemaError(f"{where}: missing or non-numeric 'ts'")
    if ph == "X":
        dur = obj.get("dur")
        if not isinstance(dur, Number) or isinstance(dur, bool) or dur < 0:
            raise SchemaError(f"{where}: complete event needs 'dur' >= 0")
    if "name" in obj and not isinstance(obj["name"], str):
        raise SchemaError(f"{where}: 'name' must be a string")


def validate_perfetto(path: Union[str, Path]) -> int:
    """Validate a Chrome-trace JSON file; returns the event count."""
    with open(path, "r", encoding="utf-8") as f:
        try:
            payload = json.load(f)
        except json.JSONDecodeError as exc:
            raise SchemaError(f"{path}: invalid JSON: {exc}") from exc
    if isinstance(payload, list):  # the bare-array flavour is also legal
        events = payload
    elif isinstance(payload, dict):
        events = payload.get("traceEvents")
        if not isinstance(events, list):
            raise SchemaError(f"{path}: missing 'traceEvents' array")
    else:
        raise SchemaError(f"{path}: top level must be an object or array")
    for index, event in enumerate(events):
        validate_trace_event(event, where=f"{path}: traceEvents[{index}]")
    return len(events)

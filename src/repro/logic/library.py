"""The standard MOUSE gate library.

Every entry is a threshold gate per :class:`repro.logic.gates.GateSpec`.
Derivations (k = ones_threshold; output switches iff #ones <= k; the
switched value is the complement of the preset):

=========  ========  ===  ======  =========================================
gate       n_inputs   k   preset  output
=========  ========  ===  ======  =========================================
NOT            1      0     0     1 iff input 0
BUF            1      0     1     input (copy through the array)
NAND           2      1     0     0 iff both inputs 1
AND            2      1     1     1 iff both inputs 1
NOR            2      0     0     1 iff both inputs 0
OR             2      0     1     0 iff both inputs 0
NAND3          3      2     0     0 iff all three 1
AND3           3      2     1     1 iff all three 1
NOR3           3      0     0     1 iff all three 0
OR3            3      0     1     0 iff all three 0
MIN3           3      1     0     complement of 3-input majority
MAJ3           3      1     1     3-input majority
=========  ========  ===  ======  =========================================

The set {NAND} alone is universal; MOUSE programs in this repo compile
mostly to NAND (the paper's full adder is 9 NANDs) but the richer
library is available to the compiler and is exercised by tests.
"""

from __future__ import annotations

from repro.logic.gates import GateSpec

NOT = GateSpec("NOT", n_inputs=1, ones_threshold=0, preset=False)
BUF = GateSpec("BUF", n_inputs=1, ones_threshold=0, preset=True)
NAND = GateSpec("NAND", n_inputs=2, ones_threshold=1, preset=False)
AND = GateSpec("AND", n_inputs=2, ones_threshold=1, preset=True)
NOR = GateSpec("NOR", n_inputs=2, ones_threshold=0, preset=False)
OR = GateSpec("OR", n_inputs=2, ones_threshold=0, preset=True)
NAND3 = GateSpec("NAND3", n_inputs=3, ones_threshold=2, preset=False)
AND3 = GateSpec("AND3", n_inputs=3, ones_threshold=2, preset=True)
NOR3 = GateSpec("NOR3", n_inputs=3, ones_threshold=0, preset=False)
OR3 = GateSpec("OR3", n_inputs=3, ones_threshold=0, preset=True)
MIN3 = GateSpec("MIN3", n_inputs=3, ones_threshold=1, preset=False)
MAJ3 = GateSpec("MAJ3", n_inputs=3, ones_threshold=1, preset=True)

GATE_LIBRARY: dict[str, GateSpec] = {
    spec.name: spec
    for spec in (NOT, BUF, NAND, AND, NOR, OR, NAND3, AND3, NOR3, OR3, MIN3, MAJ3)
}


def gate_by_name(name: str) -> GateSpec:
    """Look up a gate, case-insensitively."""
    try:
        return GATE_LIBRARY[name.upper()]
    except KeyError:
        raise KeyError(
            f"unknown gate {name!r}; library has {sorted(GATE_LIBRARY)}"
        ) from None

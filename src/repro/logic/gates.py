"""Gate specification, electrical design, and per-gate energy.

A CRAM gate is fully described by four numbers (Section II-B):

* the number of input MTJs wired in parallel,
* the preset value written into the output MTJ beforehand,
* the direction of the drive current (which fixes the only state the
  output can switch *to* — the opposite of the preset), and
* the switching threshold: the output switches iff at most
  ``ones_threshold`` of the inputs hold logic 1 (more 1s = higher
  parallel resistance = less current).

The drive voltage realising a given threshold is computed analytically
from the device parameters (:func:`design_voltage`), placing the
critical current at the geometric mean of the two boundary resistances
so both the switch and hold cases have symmetric relative margin.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

from repro.devices.mtj import SwitchDirection
from repro.devices.parameters import DeviceParameters
from repro.logic.resistance import total_path_resistance


@dataclass(frozen=True)
class GateSpec:
    """A threshold gate realisable in one MOUSE logic instruction.

    Attributes
    ----------
    name:
        Library name, e.g. ``"NAND"``.
    n_inputs:
        Number of parallel input cells (1-5 supported by the ISA).
    ones_threshold:
        Output switches iff the number of logic-1 inputs is <= this.
    preset:
        Value the output row must be preset to (by a write) before the
        logic instruction executes.
    """

    name: str
    n_inputs: int
    ones_threshold: int
    preset: bool

    def __post_init__(self) -> None:
        if self.n_inputs < 1:
            raise ValueError("gate needs at least one input")
        if not 0 <= self.ones_threshold < self.n_inputs:
            raise ValueError(
                "ones_threshold must be in [0, n_inputs): switching on all "
                "combinations would make the gate a constant"
            )

    @property
    def direction(self) -> SwitchDirection:
        """Drive-current direction: always toward the non-preset state."""
        return SwitchDirection.TO_P if self.preset else SwitchDirection.TO_AP

    def switches(self, n_ones: int) -> bool:
        """Whether the output should switch for ``n_ones`` logic-1 inputs."""
        return n_ones <= self.ones_threshold

    def evaluate(self, inputs) -> int:
        """Ideal Boolean output of the gate for concrete inputs."""
        bits = [int(bool(b)) for b in inputs]
        if len(bits) != self.n_inputs:
            raise ValueError(
                f"{self.name} takes {self.n_inputs} inputs, got {len(bits)}"
            )
        if self.switches(sum(bits)):
            return int(self.direction.target_state)
        return int(self.preset)

    def truth_table(self):
        """Yield ``(inputs_tuple, output)`` over all input combinations."""
        for code in range(2**self.n_inputs):
            bits = tuple((code >> i) & 1 for i in range(self.n_inputs))
            yield bits, self.evaluate(bits)


@lru_cache(maxsize=None)
def design_voltage(params: DeviceParameters, spec: GateSpec) -> float:
    """Drive voltage placing the switching threshold between the boundary
    input combinations.

    With ``k = ones_threshold``, the hardest case that must switch has
    ``k`` ones (highest resistance among switching cases) and the easiest
    case that must hold has ``k + 1`` ones.  The voltage is chosen so the
    critical current falls at the geometric mean of those two total path
    resistances.
    """
    r_switch = total_path_resistance(
        params, spec.n_inputs, spec.ones_threshold, spec.preset
    )
    r_hold = total_path_resistance(
        params, spec.n_inputs, spec.ones_threshold + 1, spec.preset
    )
    if not r_switch < r_hold:
        raise ValueError(
            f"gate {spec.name} infeasible at {params.name}: switching case "
            f"resistance {r_switch:.1f} not below hold case {r_hold:.1f}"
        )
    return params.switching_current * math.sqrt(r_switch * r_hold)


@lru_cache(maxsize=None)
def gate_margin(params: DeviceParameters, spec: GateSpec) -> float:
    """Relative current margin of the gate (same on both sides by the
    geometric-mean voltage choice).  Larger = more robust."""
    r_switch = total_path_resistance(
        params, spec.n_inputs, spec.ones_threshold, spec.preset
    )
    r_hold = total_path_resistance(
        params, spec.n_inputs, spec.ones_threshold + 1, spec.preset
    )
    return math.sqrt(r_hold / r_switch) - 1.0


def operation_current(params: DeviceParameters, spec: GateSpec, n_ones: int) -> float:
    """Current through the output cell for a concrete input combination
    (with the output still at its preset value)."""
    voltage = design_voltage(params, spec)
    return voltage / total_path_resistance(params, spec.n_inputs, n_ones, spec.preset)


def gate_energy(params: DeviceParameters, spec: GateSpec, n_ones: int) -> float:
    """Energy of one gate execution in one column, joules.

    First-order model: the designed voltage is applied across the path
    for one switching time, E = V^2 / R_total * t_switch.  (The real
    pulse is applied for the full window regardless of whether the
    output switches — the array has no feedback — so energy does not
    depend on the outcome, only on the input resistances.)
    """
    voltage = design_voltage(params, spec)
    r_total = total_path_resistance(params, spec.n_inputs, n_ones, spec.preset)
    return voltage**2 / r_total * params.switching_time


@lru_cache(maxsize=None)
def mean_gate_energy(params: DeviceParameters, spec: GateSpec) -> float:
    """Gate energy averaged over uniformly random inputs (cost model)."""
    n = spec.n_inputs
    total = 0.0
    for n_ones in range(n + 1):
        weight = math.comb(n, n_ones) / 2**n
        total += weight * gate_energy(params, spec, n_ones)
    return total


def write_energy(params: DeviceParameters) -> float:
    """Energy of writing one cell (also the preset cost per column).

    A write drives the switching current through the cell's write path
    for one switching time with the required overdrive voltage.
    """
    from repro.devices.cell import output_resistance

    # Worst-case path resistance (AP state for STT; channel for SHE).
    r = output_resistance(params, True)
    v = params.switching_current * r * 1.2  # 20% write overdrive
    return v**2 / r * params.switching_time


def read_energy(params: DeviceParameters) -> float:
    """Energy of (non-destructively) reading one cell.

    Reads sense with a voltage low enough to keep the current well under
    the switching threshold (1/3 of critical) for a third of the
    switching time.
    """
    from repro.devices.cell import input_resistance

    r = input_resistance(params, False)  # worst case: low-resistance state
    i_read = params.switching_current / 3.0
    v = i_read * r
    return v * i_read * (params.switching_time / 3.0)

"""Resistor-network arithmetic for in-array logic operations.

The current path of a logic operation (Figure 3) is: one bitline ->
the input cells in parallel -> the logic line -> the output cell ->
the other bitline.  These helpers compute the network resistance for a
given number of logic-1 inputs; they are shared by the analytic gate
design, the scalar device simulator, and the vectorised tile simulator
so there is a single source of truth for the electrical model.
"""

from __future__ import annotations

from repro.devices.cell import input_resistance, output_resistance
from repro.devices.parameters import DeviceParameters


def parallel_resistance(resistances) -> float:
    """Parallel combination; raises on an empty network."""
    rs = list(resistances)
    if not rs:
        raise ValueError("need at least one resistance")
    return 1.0 / sum(1.0 / r for r in rs)


def input_network_resistance(
    params: DeviceParameters, n_inputs: int, n_ones: int
) -> float:
    """Resistance of ``n_inputs`` parallel input cells, ``n_ones`` of
    which hold logic 1 (AP, high resistance)."""
    if not 0 <= n_ones <= n_inputs:
        raise ValueError(f"n_ones={n_ones} out of range for {n_inputs} inputs")
    r0 = input_resistance(params, False)
    r1 = input_resistance(params, True)
    return 1.0 / (n_ones / r1 + (n_inputs - n_ones) / r0)


def total_path_resistance(
    params: DeviceParameters, n_inputs: int, n_ones: int, preset: bool
) -> float:
    """Full operation path: input network in series with the output cell
    (whose contribution depends on its preset for STT, but not SHE)."""
    return input_network_resistance(params, n_inputs, n_ones) + output_resistance(
        params, preset
    )

"""CRAM threshold-logic gates built from MTJ resistor networks.

A MOUSE logic operation connects the MTJs of 2-3 input rows in parallel,
in series with the output row's cell, across the bitlines (Figures 1 and
3).  The applied voltage and the output's preset value select the gate:
the output switches — in one direction only — iff the input network's
resistance is low enough, i.e. iff *at most k* inputs hold logic 1.
Every gate in the library is therefore a monotone threshold function
plus a fixed preset, which is exactly why each gate is idempotent.
"""

from repro.logic.gates import GateSpec, design_voltage, gate_energy, gate_margin
from repro.logic.library import GATE_LIBRARY, gate_by_name
from repro.logic.resistance import (
    input_network_resistance,
    parallel_resistance,
    total_path_resistance,
)

__all__ = [
    "GateSpec",
    "design_voltage",
    "gate_energy",
    "gate_margin",
    "GATE_LIBRARY",
    "gate_by_name",
    "parallel_resistance",
    "input_network_resistance",
    "total_path_resistance",
]

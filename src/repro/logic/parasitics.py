"""Interconnect-parasitic analysis (after Zabihi et al. [95]).

The paper's companion work analyses how bitline / logic-line wire
resistance erodes CRAM logic margins as the operands' rows move apart.
This module provides that first-order analysis on top of the gate
designs here: wire resistance proportional to the row span of the
operation is inserted in series with the operation path, and the
remaining current margin is computed.  It is analysis-only — the
functional tile keeps the ideal model, as the paper's own evaluation
does — but it quantifies how far apart a mapper may place operands
before a gate's decision flips, and the maximum safe span per gate.

Wire resistance per row pitch: with ~45 ohm/um copper at beyond-22 nm
pitches and a ~0.1 um row pitch, a few ohms per row; the default 5
ohm/row is deliberately pessimistic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.devices.parameters import DeviceParameters
from repro.logic.gates import GateSpec, design_voltage
from repro.logic.resistance import total_path_resistance

#: Default wire resistance per row of separation, ohms (pessimistic).
DEFAULT_OHMS_PER_ROW = 5.0


@dataclass(frozen=True)
class SpanAnalysis:
    """Margin of one gate at one operand row span."""

    technology: str
    gate: str
    span_rows: int
    switch_current_ratio: float  # worst switching case current / I_c
    hold_current_ratio: float  # worst hold case current / I_c

    @property
    def functional(self) -> bool:
        """Both decisions still on the right side of the threshold."""
        return self.switch_current_ratio >= 1.0 > self.hold_current_ratio


def margin_at_span(
    params: DeviceParameters,
    spec: GateSpec,
    span_rows: int,
    ohms_per_row: float = DEFAULT_OHMS_PER_ROW,
) -> SpanAnalysis:
    """Gate currents with wire resistance for a given operand span.

    The span is the distance (in rows) between the furthest input and
    the output; the wire resistance sits in series with the whole
    operation path (logic line + bitline segments).
    """
    if span_rows < 0:
        raise ValueError("span cannot be negative")
    wire = span_rows * ohms_per_row
    voltage = design_voltage(params, spec)  # designed for the ideal path
    k = spec.ones_threshold
    r_switch = total_path_resistance(params, spec.n_inputs, k, spec.preset) + wire
    r_hold = (
        total_path_resistance(params, spec.n_inputs, k + 1, spec.preset) + wire
    )
    i_c = params.switching_current
    return SpanAnalysis(
        technology=params.name,
        gate=spec.name,
        span_rows=span_rows,
        switch_current_ratio=(voltage / r_switch) / i_c,
        hold_current_ratio=(voltage / r_hold) / i_c,
    )


def max_functional_span(
    params: DeviceParameters,
    spec: GateSpec,
    ohms_per_row: float = DEFAULT_OHMS_PER_ROW,
    ceiling: int = 1 << 16,
) -> int:
    """Largest operand row span at which the gate still works.

    Wire resistance only ever *reduces* current, so the hold case can
    never break; the failure mode is the switching case dropping under
    the critical current.  Binary search on the span.
    """
    if not margin_at_span(params, spec, 0, ohms_per_row).functional:
        return 0
    lo, hi = 0, 1
    while hi < ceiling and margin_at_span(params, spec, hi, ohms_per_row).functional:
        lo, hi = hi, hi * 2
    if hi >= ceiling:
        return ceiling
    while lo + 1 < hi:
        mid = (lo + hi) // 2
        if margin_at_span(params, spec, mid, ohms_per_row).functional:
            lo = mid
        else:
            hi = mid
    return lo

"""Workload mapping: trained models -> MOUSE cost profiles and memory.

Scheduling policy (paper Sections VI-VIII): *greedy minimal columns*.
Each independent work unit — an (input x support-vector) dot product
for SVM, a neuron for BNN — packs as many vector elements into one
column as the 1024 rows allow (element storage lives on both bitline
parities so gate operands are always reachable, plus accumulator and
scratch headroom); elements that do not fit spill into further columns,
whose partial results are merged by a log-depth read/write + add
reduction.  All units compute simultaneously (column + tile
parallelism) while the instruction *stream* is shared — columns are the
SIMD dimension.

Every phase's instruction counts come from
:func:`repro.compile.arith.instruction_histogram`, i.e. from the real
emitter, and are priced per active-column count through the
:class:`repro.energy.model.InstructionCostModel` — the aggregate
numbers cannot drift from the functional compiler.

Memory accounting mirrors the paper's: every column a unit occupies is
charged for the full tile height, instructions cost 8 bytes each, and
the benchmark is assigned the smallest power-of-two capacity that fits
(Table III's "total memory" column).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.compile.arith import instruction_count, instruction_histogram
from repro.devices.parameters import DeviceParameters
from repro.energy.area import AreaModel, nvsim_capacity_mb
from repro.energy.model import InstructionCostModel
from repro.harvest.intermittent import InstructionProfile

TILE_ROWS = 1024
TILE_COLS = 1024
TILE_BYTES = TILE_ROWS * TILE_COLS // 8  # 128 KB
#: Rows reserved per column for accumulators, the squared kernel /
#: coefficient pipeline, carries, and gate scratch.
WORKSPACE_ROWS = 256


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


def _acc_bits(element_bits: int, weight_bits: int, length: int) -> int:
    """Accumulator width for a dot product of ``length`` products."""
    return element_bits + weight_bits + max(1, math.ceil(math.log2(max(2, length))))


# ----------------------------------------------------------------------
# Profile assembly helpers
# ----------------------------------------------------------------------


class _ProfileBuilder:
    """Accumulates phases into an InstructionProfile with per-kind
    instruction pricing.

    ``max_columns`` implements the paper's Section IV-C power-budget
    knob: when a phase wants more simultaneously-active columns than
    the cap, it is time-multiplexed — the same instruction stream is
    repeated over column groups of at most the cap, trading latency for
    power draw.
    """

    def __init__(
        self,
        name: str,
        cost: InstructionCostModel,
        max_columns: Optional[int] = None,
    ) -> None:
        if max_columns is not None and max_columns < 1:
            raise ValueError("max_columns must be at least 1")
        self.profile = InstructionProfile(name=name)
        self.cost = cost
        self.max_columns = max_columns
        self._backup = cost.backup_energy()
        self._fetch = cost.fetch_energy()

    def _price(self, kind: str, n_columns: int) -> float:
        if kind == "PRESET":
            body = self.cost.preset_energy(n_columns)
        elif kind in ("READ",):
            body = self.cost.row_read_energy(TILE_COLS)
        elif kind in ("WRITE",):
            body = self.cost.row_write_energy(TILE_COLS)
        elif kind == "ACTIVATE":
            body = self.cost.activate_energy(n_columns)
        else:
            body = self.cost.logic_energy(kind, n_columns)
        return body + self._fetch

    @staticmethod
    def _addresses(kind: str) -> int:
        """Row/column addresses one instruction of this kind carries."""
        if kind in ("PRESET", "READ", "WRITE"):
            return 1
        if kind == "ACTIVATE":
            return 5
        from repro.logic.library import gate_by_name

        return gate_by_name(kind).n_inputs + 1

    def add_kind(self, kind: str, count: int, n_columns: int, label: str) -> None:
        if count <= 0:
            return
        if self.max_columns is not None and n_columns > self.max_columns:
            groups = _ceil_div(n_columns, self.max_columns)
            count *= groups
            n_columns = self.max_columns
        # READ/WRITE are full-row operations priced at the tile width,
        # whatever the caller's active-column count; record the width
        # the segment was actually priced at so static bounds line up.
        priced_columns = TILE_COLS if kind in ("READ", "WRITE") else n_columns
        self.profile.add(
            count,
            self._price(kind, n_columns),
            self._backup,
            label,
            addresses=self._addresses(kind),
            kind=kind,
            columns=priced_columns,
        )
        self.profile.active_columns = max(self.profile.active_columns, 1)

    def add_op(self, op: str, args: tuple, repeat: int, n_columns: int, label: str) -> None:
        """Add ``repeat`` executions of an arithmetic routine, all
        running SIMD across ``n_columns`` columns."""
        if repeat <= 0 or n_columns <= 0:
            return
        for kind, count in instruction_histogram(op, *args):
            self.add_kind(kind, count * repeat, n_columns, label)

    def add_moves(self, count: int, label: str) -> None:
        """Buffer-mediated row moves (READ + WRITE pairs)."""
        if count <= 0:
            return
        self.add_kind("READ", count, TILE_COLS, label)
        self.add_kind("WRITE", count, TILE_COLS, label)

    def add_activate(self, count: int, n_columns: int, label: str) -> None:
        if count <= 0:
            return
        energy = self.cost.activate_energy(n_columns) + self._fetch
        backup = self._backup + self.cost.activate_backup_energy()
        self.profile.add(
            count, energy, backup, label, kind="ACTIVATE", columns=n_columns
        )

    def done(self, active_columns: int) -> InstructionProfile:
        self.profile.active_columns = max(1, active_columns)
        return self.profile


def _reduction(
    pb: _ProfileBuilder,
    columns_per_unit: int,
    units: int,
    value_bits: int,
    label: str,
) -> None:
    """Log-depth merge of per-column partials down to one column per
    unit: each step moves one operand row-set and adds."""
    remaining = columns_per_unit
    active = units * columns_per_unit
    while remaining > 1:
        pairs = remaining // 2
        pb.add_moves(value_bits, f"{label}:move")
        pb.add_op("add", (value_bits,), 1, max(1, active // 2), f"{label}:add")
        remaining = remaining - pairs
        active = units * remaining


# ----------------------------------------------------------------------
# Workloads
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Workload:
    """Base: things every benchmark exposes to the experiment harness."""

    name: str

    def memory_bytes(self) -> tuple[int, int]:
        """(instruction bytes, data bytes)."""
        raise NotImplementedError

    def capacity_mb(self) -> int:
        instr, data = self.memory_bytes()
        return nvsim_capacity_mb(instr + data)

    def area_mm2(self, params: DeviceParameters) -> float:
        return AreaModel(params).total_area_mm2(self.capacity_mb())

    def profile(
        self, cost: InstructionCostModel, max_columns: Optional[int] = None
    ) -> InstructionProfile:
        """Instruction-stream cost profile; ``max_columns`` caps the
        simultaneously-active columns (the Section IV-C power knob)."""
        raise NotImplementedError

    # Convenience: continuous-power latency/energy (Table IV numbers).
    def continuous(self, cost: InstructionCostModel) -> tuple[float, float]:
        p = self.profile(cost)
        return p.instructions * cost.cycle_time, p.total_energy


@dataclass(frozen=True)
class SvmWorkload(Workload):
    """One-vs-rest polynomial-degree-2 SVM inference (Section III).

    Per class: dot(input, sv) for each SV, +offset, square, multiply by
    the dual coefficient, accumulate; argmax across classes.
    """

    dimensions: int
    input_bits: int
    sv_bits: int
    n_support: int  # total across all classifiers (paper's #SV)
    n_classes: int
    binarized: bool = False

    @classmethod
    def from_model(
        cls,
        model,
        name: str = "SVM (custom)",
        input_bits: int = 8,
        sv_bits: int = 8,
        binarized: bool = False,
    ) -> "SvmWorkload":
        """Cost-model a *trained* :class:`repro.ml.svm.OneVsRestSVM` —
        the support-vector count and dimensionality come from the model
        itself, so training decisions (C, tolerance) flow straight into
        the latency/energy/area estimates."""
        if not getattr(model, "machines", None):
            raise ValueError("model is not fitted")
        return cls(
            name=name,
            dimensions=model.machines[0].support_vectors_.shape[1],
            input_bits=1 if binarized else input_bits,
            sv_bits=1 if binarized else sv_bits,
            n_support=model.total_support_vectors,
            n_classes=model.n_classes,
            binarized=binarized,
        )
    coef_bits: int = 16
    #: Kernel values are truncated to this width before squaring
    #: (standard fixed-point practice; the paper's pipeline likewise
    #: keeps intermediate precision bounded).
    kernel_keep_bits: int = 16
    #: Class-score accumulator cap.
    score_cap_bits: int = 32

    # -- layout ---------------------------------------------------------

    def _rows_per_element(self) -> int:
        if self.binarized:
            return 4  # x bit + w bit, each with its parity mirror
        return 2 * (self.input_bits + self.sv_bits)

    def elements_per_column(self) -> int:
        usable = TILE_ROWS - WORKSPACE_ROWS
        return max(1, min(self.dimensions, usable // self._rows_per_element()))

    def columns_per_unit(self) -> int:
        return _ceil_div(self.dimensions, self.elements_per_column())

    def total_columns(self) -> int:
        return self.n_support * self.columns_per_unit()

    def kernel_bits(self) -> int:
        """Width of one dot-product result."""
        if self.binarized:
            return max(1, math.ceil(math.log2(self.dimensions + 1)))
        return _acc_bits(self.input_bits, self.sv_bits, self.dimensions)

    def kernel_kept_bits(self) -> int:
        """Dot-product width after truncation, entering the square."""
        return min(self.kernel_bits(), self.kernel_keep_bits)

    def squared_bits(self) -> int:
        """Width kept after squaring, entering the coefficient multiply."""
        return min(2 * self.kernel_kept_bits(), self.kernel_keep_bits + 8)

    def score_bits(self) -> int:
        """Width of a per-class accumulated score."""
        per_sv = self.squared_bits() + self.coef_bits
        wide = per_sv + max(
            1, math.ceil(math.log2(max(2, self.n_support // max(1, self.n_classes))))
        )
        return min(wide, self.score_cap_bits)

    # -- memory -----------------------------------------------------------

    def memory_bytes(self) -> tuple[int, int]:
        data = self.total_columns() * TILE_ROWS // 8  # full columns charged
        instr = 8 * self._instruction_estimate()
        return instr, data

    def _instruction_estimate(self) -> int:
        e = self.elements_per_column()
        kb = self.kernel_bits()
        if self.binarized:
            per_col = e * instruction_count("and") + instruction_count("popcount", e)
        else:
            per_col = e * (
                instruction_count("mul", self.input_bits, self.sv_bits)
                + instruction_count("add", kb)
            )
        post = (
            instruction_count("square", self.kernel_kept_bits())
            + instruction_count("mul", self.squared_bits(), self.coef_bits)
            + 12 * instruction_count("add", self.score_bits())
        )
        return per_col + post

    # -- cost profile -----------------------------------------------------

    def profile(
        self, cost: InstructionCostModel, max_columns: Optional[int] = None
    ) -> InstructionProfile:
        pb = _ProfileBuilder(self.name, cost, max_columns=max_columns)
        e = self.elements_per_column()
        cpu = self.columns_per_unit()
        units = self.n_support
        active = units * cpu
        kb = self.kernel_bits()

        # Configuration: bulk activations, a handful per tile group.
        pb.add_activate(_ceil_div(active, TILE_COLS), TILE_COLS, "configure")

        # Phase 1: in-column element-wise MAC (all unit columns active).
        # Signed support vectors are stored offset-binary (+2^(b-1)) so
        # the per-element multiply is *unsigned*; a single per-unit
        # subtraction of 2^(b-1) * sum(x) (computed once, shared) undoes
        # the offset after the reduction.
        if self.binarized:
            pb.add_op("and", (), e, active, "mac:and")
            pb.add_op("popcount", (e,), 1, active, "mac:popcount")
        else:
            pb.add_op("mul", (self.input_bits, self.sv_bits), e, active, "mac:mul")
            pb.add_op("add", (kb,), e, active, "mac:acc")

        # Phase 2: merge per-column partials into one column per SV.
        _reduction(pb, cpu, units, kb, "reduce")
        if not self.binarized:
            pb.add_op("sub", (kb,), 1, units, "mac:unoffset")

        # Phase 3: kernel post-processing, SIMD across all SVs.
        pb.add_op("square", (self.kernel_kept_bits(),), 1, units, "post:square")
        pb.add_op(
            "mul", (self.squared_bits(), self.coef_bits), 1, units, "post:coef"
        )

        # Phase 4: per-class accumulation of n_support/n_classes values.
        per_class = max(1, units // max(1, self.n_classes))
        sb = self.score_bits()
        steps = max(1, math.ceil(math.log2(max(2, per_class))))
        remaining = units
        for _ in range(steps):
            pb.add_moves(sb, "classsum:move")
            remaining = max(self.n_classes, remaining // 2)
            pb.add_op("add", (sb,), 1, remaining, "classsum:add")

        # Phase 5: argmax over class scores.
        pb.add_op("word_max", (self.n_classes, sb), 1, 1, "argmax")
        if max_columns is not None:
            active = min(active, max_columns)
        return pb.done(active)


@dataclass(frozen=True)
class BnnWorkload(Workload):
    """Binary MLP inference: XNOR + popcount + threshold per neuron,
    with an integer (+/- x) first layer when inputs are 8-bit."""

    layer_sizes: tuple[int, ...]  # (input, hidden..., classes)
    input_bits: int
    output_bits: int

    @classmethod
    def from_model(cls, model) -> "BnnWorkload":
        """Cost-model a trained :class:`repro.ml.bnn.BNN`."""
        return cls.from_config(model.config)

    @classmethod
    def from_config(cls, config) -> "BnnWorkload":
        return cls(
            name=f"BNN {config.name}",
            layer_sizes=(config.input_size, *config.hidden_sizes, config.n_classes),
            input_bits=config.input_bits,
            output_bits=config.output_bits,
        )

    # -- layout ---------------------------------------------------------

    def _rows_per_element(self, layer: int) -> int:
        if layer == 0 and self.input_bits > 1:
            return 2 * (self.input_bits + 1)  # 8-bit activation + 1-bit weight
        return 4  # weight bit + activation bit, with parity mirrors

    def _layer_geometry(self, layer: int) -> tuple[int, int, int]:
        """(elements_per_column, columns_per_neuron, fan_in)."""
        fan_in = self.layer_sizes[layer]
        usable = TILE_ROWS - WORKSPACE_ROWS
        e = max(1, min(fan_in, usable // self._rows_per_element(layer)))
        return e, _ceil_div(fan_in, e), fan_in

    def total_columns(self) -> int:
        total = 0
        for layer in range(len(self.layer_sizes) - 1):
            _, cpu, _ = self._layer_geometry(layer)
            total += self.layer_sizes[layer + 1] * cpu
        return total

    def memory_bytes(self) -> tuple[int, int]:
        data = self.total_columns() * TILE_ROWS // 8
        instr = 8 * self._instruction_estimate()
        return instr, data

    def _instruction_estimate(self) -> int:
        total = 0
        for layer in range(len(self.layer_sizes) - 1):
            e, cpu, fan_in = self._layer_geometry(layer)
            acc = _acc_bits(self.input_bits if layer == 0 else 1, 1, fan_in)
            if layer == 0 and self.input_bits > 1:
                total += e * instruction_count("add", acc)
            else:
                total += e * instruction_count("xnor") + instruction_count(
                    "popcount", e
                )
            total += instruction_count("ge", acc) + 2 * fan_in  # threshold + transpose
        return total

    # -- cost profile -----------------------------------------------------

    def profile(
        self, cost: InstructionCostModel, max_columns: Optional[int] = None
    ) -> InstructionProfile:
        pb = _ProfileBuilder(self.name, cost, max_columns=max_columns)
        n_layers = len(self.layer_sizes) - 1
        peak_active = 1
        pb.add_activate(
            _ceil_div(self.total_columns(), TILE_COLS), TILE_COLS, "configure"
        )
        for layer in range(n_layers):
            e, cpu, fan_in = self._layer_geometry(layer)
            neurons = self.layer_sizes[layer + 1]
            active = neurons * cpu
            peak_active = max(peak_active, active)
            acc = _acc_bits(self.input_bits if layer == 0 else 1, 1, fan_in)
            tag = f"L{layer}"

            if layer == 0 and self.input_bits > 1:
                # Integer +/- accumulation of 8-bit inputs.
                pb.add_op("add", (acc,), e, active, f"{tag}:acc")
            else:
                pb.add_op("xnor", (), e, active, f"{tag}:xnor")
                pb.add_op("popcount", (e,), 1, active, f"{tag}:popcount")

            _reduction(pb, cpu, neurons, acc, f"{tag}:reduce")

            if layer < n_layers - 1:
                # Threshold compare -> activation bit.
                pb.add_op("ge", (acc,), 1, neurons, f"{tag}:threshold")
                # Transpose: broadcast this layer's activation bits into
                # the next layer's columns through the buffer.
                pb.add_moves(self.layer_sizes[layer + 1], f"{tag}:transpose")
            else:
                # Output scores: add the quantised bias, then argmax.
                pb.add_op("add", (self.output_bits,), 1, neurons, f"{tag}:bias")
                pb.add_op(
                    "word_max",
                    (self.layer_sizes[-1], self.output_bits),
                    1,
                    1,
                    "argmax",
                )
        if max_columns is not None:
            peak_active = min(peak_active, max_columns)
        return pb.done(peak_active)

"""Machine-learning case studies (paper Section III).

The paper evaluates SVMs (polynomial kernel, degree 2, one-vs-rest)
and binary neural networks (FINN and FP-BNN topologies) on MNIST,
HAR and ADULT.  Those datasets cannot ship in this offline repo, so
:mod:`repro.ml.datasets` provides deterministic synthetic twins with
identical shapes, dtypes, and class structure; training is from-scratch
NumPy (SMO for SVMs, straight-through-estimator for BNNs), mirroring
the paper's offline training / on-MOUSE inference split.

:mod:`repro.ml.mapping` turns a trained model into (a) bit-exact MOUSE
programs for small instances and (b) exact instruction-stream profiles
for the paper-scale benchmarks, built from the very same compiler
macros so the two can never disagree.
"""

from repro.ml.datasets import Dataset, synthetic_mnist, synthetic_har, synthetic_adult, binarize
from repro.ml.fixedpoint import FixedPointFormat, quantize, dequantize
from repro.ml.svm import PolySVM, OneVsRestSVM
from repro.ml.bnn import BNN, BNNConfig, FINN_MNIST, FPBNN_MNIST
from repro.ml.io import load_bnn, load_svm, save_bnn, save_svm
from repro.ml.mapping import SvmWorkload, BnnWorkload, Workload

__all__ = [
    "Dataset",
    "synthetic_mnist",
    "synthetic_har",
    "synthetic_adult",
    "binarize",
    "FixedPointFormat",
    "quantize",
    "dequantize",
    "PolySVM",
    "OneVsRestSVM",
    "BNN",
    "BNNConfig",
    "FINN_MNIST",
    "FPBNN_MNIST",
    "SvmWorkload",
    "BnnWorkload",
    "Workload",
    "save_svm",
    "load_svm",
    "save_bnn",
    "load_bnn",
]

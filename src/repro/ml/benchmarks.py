"""The paper's benchmark suite, with the support-vector counts and
topologies reported in Table IV / Section VIII.

Accuracy comes from the trained models on the synthetic dataset twins
(see :mod:`repro.experiments.accuracy`); the cost/memory/area numbers
come from these workload descriptors, which use the published model
sizes so Tables III-IV and Figures 9-12 are regenerated at the paper's
scale.
"""

from __future__ import annotations

from repro.ml.bnn import FINN_MNIST, FPBNN_MNIST
from repro.ml.mapping import BnnWorkload, SvmWorkload, Workload

SVM_MNIST = SvmWorkload(
    name="SVM MNIST",
    dimensions=784,
    input_bits=8,
    sv_bits=8,
    n_support=11_813,
    n_classes=10,
)

SVM_MNIST_BIN = SvmWorkload(
    name="SVM MNIST (Bin)",
    dimensions=784,
    input_bits=1,
    sv_bits=1,
    n_support=12_214,
    n_classes=10,
    binarized=True,
)

SVM_HAR = SvmWorkload(
    name="SVM HAR",
    dimensions=561,
    input_bits=8,
    sv_bits=8,
    n_support=2_809,
    n_classes=6,
)

SVM_ADULT = SvmWorkload(
    name="SVM ADULT",
    dimensions=15,
    input_bits=8,
    sv_bits=8,
    n_support=1_909,
    n_classes=2,
)

BNN_FINN = BnnWorkload.from_config(FINN_MNIST)
BNN_FPBNN = BnnWorkload.from_config(FPBNN_MNIST)

ALL_WORKLOADS: tuple[Workload, ...] = (
    SVM_MNIST,
    SVM_MNIST_BIN,
    SVM_HAR,
    SVM_ADULT,
    BNN_FINN,
    BNN_FPBNN,
)


def workload_by_name(name: str) -> Workload:
    for workload in ALL_WORKLOADS:
        if workload.name.lower() == name.strip().lower():
            return workload
    raise KeyError(f"unknown workload {name!r}")

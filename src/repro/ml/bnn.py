"""Binary neural networks (Courbariaux et al. style, as used by FINN
and FP-BNN, whose topologies the paper adopts).

Weights and hidden activations are single bits (+1/-1); hidden-layer
multiplication becomes XNOR and accumulation becomes popcount
(Section III).  Training is straight-through-estimator SGD over latent
real weights, in pure NumPy; inference has two paths that must agree
bit-for-bit:

* ``forward`` — float path used during training;
* ``predict_int`` — the integer popcount/threshold pipeline that MOUSE
  executes, with per-neuron integer thresholds derived exactly from the
  trained biases.

Topologies: ``FINN_MNIST`` (binary input, 3 x 1024 hidden, 10 outputs)
and ``FPBNN_MNIST`` (8-bit input, 3 x 2048 hidden, 10 outputs), as in
the paper's Section VIII.  ``BNNConfig.scaled`` shrinks them for tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np


@dataclass(frozen=True)
class BNNConfig:
    """A BNN topology, mirroring the paper's two configurations."""

    name: str
    input_size: int
    hidden_sizes: tuple[int, ...]
    n_classes: int
    input_bits: int  # 1 for FINN (binarised input), 8 for FP-BNN
    output_bits: int  # accumulator precision of the output layer

    def scaled(self, factor: float) -> "BNNConfig":
        """Proportionally smaller config (for fast tests/examples)."""
        hidden = tuple(max(8, int(h * factor)) for h in self.hidden_sizes)
        return replace(self, name=f"{self.name}-x{factor}", hidden_sizes=hidden)

    @property
    def layer_shapes(self) -> list[tuple[int, int]]:
        sizes = [self.input_size, *self.hidden_sizes, self.n_classes]
        return list(zip(sizes[:-1], sizes[1:]))

    @property
    def weight_bits(self) -> int:
        """Total single-bit weights (memory sizing)."""
        return sum(i * o for i, o in self.layer_shapes)


FINN_MNIST = BNNConfig(
    name="FINN",
    input_size=784,
    hidden_sizes=(1024, 1024, 1024),
    n_classes=10,
    input_bits=1,
    output_bits=10,
)

FPBNN_MNIST = BNNConfig(
    name="FP-BNN",
    input_size=784,
    hidden_sizes=(2048, 2048, 2048),
    n_classes=10,
    input_bits=8,
    output_bits=16,
)


def _sign(x: np.ndarray) -> np.ndarray:
    """sign with sign(0) = +1, the BNN convention."""
    return np.where(x >= 0, 1.0, -1.0)


class BNN:
    """A trainable binary MLP."""

    def __init__(self, config: BNNConfig, seed: int = 0) -> None:
        self.config = config
        rng = np.random.default_rng(seed)
        self.latent = [
            rng.normal(scale=0.1, size=shape) for shape in config.layer_shapes
        ]
        self.bias = [np.zeros(shape[1]) for shape in config.layer_shapes]

    # ------------------------------------------------------------------
    # Float path (training-time semantics)
    # ------------------------------------------------------------------

    def _input_pm(self, x: np.ndarray) -> np.ndarray:
        """Map raw inputs to the first layer's domain: +/-1 for binary
        input configs, raw integers (as floats) for 8-bit input."""
        x = np.asarray(x, dtype=float)
        if self.config.input_bits == 1:
            return np.where(x > 0, 1.0, -1.0)
        return x

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Class scores (pre-softmax) through the binarised network."""
        a = self._input_pm(x)
        for index, (latent, bias) in enumerate(zip(self.latent, self.bias)):
            w = _sign(latent)
            h = a @ w / math.sqrt(latent.shape[0]) + bias
            if index < len(self.latent) - 1:
                a = _sign(h)
            else:
                return h
        raise AssertionError("unreachable")

    def predict(self, x: np.ndarray) -> np.ndarray:
        return np.argmax(self.forward(x), axis=1)

    def accuracy(self, x: np.ndarray, y: np.ndarray) -> float:
        return float(np.mean(self.predict(x) == np.asarray(y)))

    # ------------------------------------------------------------------
    # Training (straight-through estimator)
    # ------------------------------------------------------------------

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        epochs: int = 20,
        lr: float = 2.0,
        batch_size: int = 64,
        seed: int = 1,
    ) -> "BNN":
        """Train with STE SGD.

        The default learning rate looks large: gradients pass through
        sign() and a 1/sqrt(fan_in) scale, so their magnitude is tiny
        relative to the [-1, 1] latent-weight range; latent weights
        only act when they cross zero.
        """
        x = np.asarray(x, dtype=float)
        y = np.asarray(y)
        rng = np.random.default_rng(seed)
        n = len(x)
        for _ in range(epochs):
            order = rng.permutation(n)
            for start in range(0, n, batch_size):
                batch = order[start : start + batch_size]
                self._sgd_step(x[batch], y[batch], lr)
        return self

    def _sgd_step(self, x: np.ndarray, y: np.ndarray, lr: float) -> None:
        # Forward, caching pre-activations for the backward pass.
        a = self._input_pm(x)
        activations = [a]
        pre = []
        for index, (latent, bias) in enumerate(zip(self.latent, self.bias)):
            w = _sign(latent)
            h = a @ w / math.sqrt(latent.shape[0]) + bias
            pre.append(h)
            if index < len(self.latent) - 1:
                a = _sign(h)
                activations.append(a)

        # Softmax cross-entropy at the output.
        logits = pre[-1]
        logits = logits - logits.max(axis=1, keepdims=True)
        probs = np.exp(logits)
        probs /= probs.sum(axis=1, keepdims=True)
        grad = probs
        grad[np.arange(len(y)), y] -= 1.0
        grad /= len(y)

        # Backward with the straight-through estimator: d sign(h)/dh ~
        # 1{|h| <= 1}; latent weights updated through the sign as
        # identity, then clipped to [-1, 1].
        for index in reversed(range(len(self.latent))):
            latent = self.latent[index]
            scale = 1.0 / math.sqrt(latent.shape[0])
            a_in = activations[index]
            grad_w = a_in.T @ grad * scale
            grad_b = grad.sum(axis=0)
            if index > 0:
                w = _sign(latent)
                grad_a = grad @ w.T * scale
                ste_mask = (np.abs(pre[index - 1]) <= 1.0).astype(float)
                grad = grad_a * ste_mask
            self.latent[index] = np.clip(latent - lr * grad_w, -1.0, 1.0)
            self.bias[index] -= lr * grad_b

    # ------------------------------------------------------------------
    # Integer (MOUSE) inference path
    # ------------------------------------------------------------------

    def binary_weights(self) -> list[np.ndarray]:
        """Weights as {0, 1} bit matrices (1 encodes +1)."""
        return [(latent >= 0).astype(np.uint8) for latent in self.latent]

    def hidden_thresholds(self) -> list[np.ndarray]:
        """Integer popcount thresholds for each hidden layer.

        Neuron fires (outputs bit 1) iff popcount(xnor(a, w)) >= t.
        Derived so the integer decision equals the float path exactly:
        h >= 0  <=>  2p - n >= -b sqrt(n)  <=>  p >= (n - b sqrt(n)) / 2.
        """
        out = []
        for latent, bias in zip(self.latent[:-1], self.bias[:-1]):
            n = latent.shape[0]
            threshold = np.ceil((n - bias * math.sqrt(n)) / 2.0 - 1e-9)
            out.append(threshold.astype(np.int64))
        return out

    def predict_int(self, x: np.ndarray) -> np.ndarray:
        """Bit/popcount inference, as compiled onto MOUSE.

        First layer: XNOR-popcount for binary input, or signed +/-x
        accumulation for 8-bit input.  Hidden layers: XNOR-popcount
        against integer thresholds.  Output layer: integer scores with
        quantised biases, argmax.
        """
        x = np.asarray(x)
        weights = self.binary_weights()
        thresholds = self.hidden_thresholds()

        if self.config.input_bits == 1:
            bits = (x > 0).astype(np.int64)
        else:
            bits = None  # 8-bit path handled below

        for index, w01 in enumerate(weights[:-1]):
            w_pm = w01.astype(np.int64) * 2 - 1
            n = w01.shape[0]
            if index == 0 and self.config.input_bits != 1:
                acc = x.astype(np.int64) @ w_pm  # +/- integer adds
                b = self.bias[0]
                fire = acc >= np.ceil(-b * math.sqrt(n) - 1e-9).astype(np.int64)
            else:
                # popcount(xnor) = matches of the two bit-vectors
                matches = bits @ w01.astype(np.int64) + (1 - bits) @ (
                    1 - w01.astype(np.int64)
                )
                fire = matches >= thresholds[index]
            bits = fire.astype(np.int64)

        # Output layer: integer +/- accumulation plus quantised bias.
        w_out = weights[-1].astype(np.int64) * 2 - 1
        n = w_out.shape[0]
        bias_int = np.round(self.bias[-1] * math.sqrt(n)).astype(np.int64)
        pm = bits * 2 - 1
        scores = pm @ w_out + bias_int
        return np.argmax(scores, axis=1)

    def accuracy_int(self, x: np.ndarray, y: np.ndarray) -> float:
        return float(np.mean(self.predict_int(x) == np.asarray(y)))

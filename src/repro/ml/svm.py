"""Support vector machines with the paper's polynomial kernel.

"For all SVM benchmarks we use a polynomial kernel with a degree of 2"
(Section III); inference is dot products against every support vector,
squaring, coefficient multiply, and a sum, with the sign (binary) or
one-vs-rest argmax (multi-class) as the decision.  Training happens
offline in software — here a from-scratch simplified-SMO solver — and
only inference maps onto MOUSE.

The integer inference path (`decision_values_int`) mirrors exactly the
arithmetic the MOUSE programs perform: 8-bit dot products, squaring,
fixed-point coefficient multiply, integer accumulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.ml.fixedpoint import FixedPointFormat, quantize


@dataclass
class PolyKernel:
    """K(x, y) = (gamma * <x, y> + coef0) ** degree."""

    degree: int = 2
    gamma: float = 1.0
    coef0: float = 1.0

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return (self.gamma * (a @ b.T) + self.coef0) ** self.degree


class PolySVM:
    """Binary SVM trained by simplified SMO (Platt's heuristic-free
    variant: random second choice, tolerance-based KKT check).

    Parameters mirror libSVM's: ``c`` is the box constraint, ``tol``
    the KKT tolerance, ``max_passes`` how many consecutive full sweeps
    without an update end training.
    """

    def __init__(
        self,
        c: float = 1.0,
        degree: int = 2,
        gamma: Optional[float] = None,
        coef0: float = 1.0,
        tol: float = 1e-3,
        max_passes: int = 3,
        max_iter: int = 2000,
        seed: int = 0,
    ) -> None:
        self.c = c
        self.degree = degree
        self.gamma = gamma
        self.coef0 = coef0
        self.tol = tol
        self.max_passes = max_passes
        self.max_iter = max_iter
        self.seed = seed
        self.support_vectors_: Optional[np.ndarray] = None
        self.dual_coef_: Optional[np.ndarray] = None
        self.bias_: float = 0.0
        self.kernel_: Optional[PolyKernel] = None

    # ------------------------------------------------------------------

    def fit(self, x: np.ndarray, y: np.ndarray) -> "PolySVM":
        """Train on features ``x`` and labels in {-1, +1} (or {0, 1})."""
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        y = np.where(y > 0, 1.0, -1.0)
        n = len(x)
        if n == 0:
            raise ValueError("empty training set")
        if self.gamma is not None:
            gamma = self.gamma
        else:
            # libSVM's 'scale' default: 1 / (d * Var[x]) keeps kernel
            # values O(1) for raw 8-bit integer features.
            variance = float(x.var()) or 1.0
            gamma = 1.0 / (x.shape[1] * variance)
        kernel = PolyKernel(self.degree, gamma, self.coef0)
        gram = kernel(x, x)

        rng = np.random.default_rng(self.seed)
        alpha = np.zeros(n)
        bias = 0.0
        passes = 0
        iters = 0
        while passes < self.max_passes and iters < self.max_iter:
            changed = 0
            for i in range(n):
                err_i = (alpha * y) @ gram[:, i] + bias - y[i]
                if (y[i] * err_i < -self.tol and alpha[i] < self.c) or (
                    y[i] * err_i > self.tol and alpha[i] > 0
                ):
                    j = int(rng.integers(0, n - 1))
                    if j >= i:
                        j += 1
                    err_j = (alpha * y) @ gram[:, j] + bias - y[j]
                    ai_old, aj_old = alpha[i], alpha[j]
                    if y[i] != y[j]:
                        lo = max(0.0, aj_old - ai_old)
                        hi = min(self.c, self.c + aj_old - ai_old)
                    else:
                        lo = max(0.0, ai_old + aj_old - self.c)
                        hi = min(self.c, ai_old + aj_old)
                    if lo >= hi:
                        continue
                    eta = 2 * gram[i, j] - gram[i, i] - gram[j, j]
                    if eta >= 0:
                        continue
                    aj = np.clip(aj_old - y[j] * (err_i - err_j) / eta, lo, hi)
                    if abs(aj - aj_old) < 1e-7:
                        continue
                    ai = ai_old + y[i] * y[j] * (aj_old - aj)
                    alpha[i], alpha[j] = ai, aj
                    b1 = (
                        bias
                        - err_i
                        - y[i] * (ai - ai_old) * gram[i, i]
                        - y[j] * (aj - aj_old) * gram[i, j]
                    )
                    b2 = (
                        bias
                        - err_j
                        - y[i] * (ai - ai_old) * gram[i, j]
                        - y[j] * (aj - aj_old) * gram[j, j]
                    )
                    if 0 < ai < self.c:
                        bias = b1
                    elif 0 < aj < self.c:
                        bias = b2
                    else:
                        bias = 0.5 * (b1 + b2)
                    changed += 1
            passes = passes + 1 if changed == 0 else 0
            iters += 1

        keep = alpha > 1e-8
        self.support_vectors_ = x[keep]
        self.dual_coef_ = alpha[keep] * y[keep]
        self.bias_ = float(bias)
        self.kernel_ = kernel
        return self

    # ------------------------------------------------------------------

    @property
    def n_support_(self) -> int:
        if self.support_vectors_ is None:
            raise RuntimeError("not fitted")
        return len(self.support_vectors_)

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        if self.kernel_ is None:
            raise RuntimeError("not fitted")
        k = self.kernel_(np.asarray(x, dtype=float), self.support_vectors_)
        return k @ self.dual_coef_ + self.bias_

    def predict(self, x: np.ndarray) -> np.ndarray:
        return (self.decision_function(x) >= 0).astype(int)

    # -- integer (MOUSE) inference path --------------------------------

    def decision_values_int(
        self, x_int: np.ndarray, sv_bits: int = 8, coef_bits: int = 16
    ) -> np.ndarray:
        """Decision values via the integer pipeline MOUSE executes.

        dot (integer) -> add integer coef0' -> square -> multiply by
        quantised dual coefficient -> accumulate.  ``x_int`` must
        already be integers in the input format (e.g. 0..255 pixels).
        Returns integer scores whose *ordering* matches the float path
        up to quantisation error.
        """
        if self.kernel_ is None:
            raise RuntimeError("not fitted")
        sv_fmt = FixedPointFormat.for_range(self.support_vectors_, sv_bits)
        sv_int = quantize(self.support_vectors_, sv_fmt)
        coef_fmt = FixedPointFormat.for_range(self.dual_coef_, coef_bits, signed=True)
        coef_int = quantize(self.dual_coef_, coef_fmt)
        x_int = np.asarray(x_int, dtype=np.int64)
        dots = x_int @ sv_int.T  # integer dot products
        # (gamma * dot + coef0)^2 with gamma/coef0 folded into an
        # integer offset: coef0' = coef0 / (gamma * sv_scale * x_scale).
        offset = round(self.kernel_.coef0 / (self.kernel_.gamma * sv_fmt.scale))
        kernel_int = (dots + offset) ** 2
        return kernel_int @ coef_int


class OneVsRestSVM:
    """The paper's multi-class extension: one binary SVM per class,
    argmax of the decision scores (Section III)."""

    def __init__(self, n_classes: int, **svm_kwargs) -> None:
        if n_classes < 2:
            raise ValueError("need at least two classes")
        self.n_classes = n_classes
        self.svm_kwargs = svm_kwargs
        self.machines: list[PolySVM] = []

    def fit(self, x: np.ndarray, y: np.ndarray) -> "OneVsRestSVM":
        y = np.asarray(y)
        self.machines = []
        for cls in range(self.n_classes):
            machine = PolySVM(**self.svm_kwargs)
            machine.fit(x, (y == cls).astype(float) * 2 - 1)
            self.machines.append(machine)
        return self

    @property
    def total_support_vectors(self) -> int:
        """Total #SV across classifiers (the paper's #SV column)."""
        return sum(m.n_support_ for m in self.machines)

    def decision_matrix(self, x: np.ndarray) -> np.ndarray:
        if not self.machines:
            raise RuntimeError("not fitted")
        return np.stack([m.decision_function(x) for m in self.machines], axis=1)

    def predict(self, x: np.ndarray) -> np.ndarray:
        return np.argmax(self.decision_matrix(x), axis=1)

    def predict_int(self, x_int: np.ndarray, **int_kwargs) -> np.ndarray:
        """Multi-class prediction through the integer pipeline.

        Scores from different binary machines have different quantiser
        scales; normalise each machine's integer score by its scale so
        the argmax compares like with like (on MOUSE this is a
        per-machine constant shift folded into the coefficients).
        """
        if not self.machines:
            raise RuntimeError("not fitted")
        columns = []
        for machine in self.machines:
            raw = machine.decision_values_int(x_int, **int_kwargs).astype(float)
            sv_fmt = FixedPointFormat.for_range(
                machine.support_vectors_, int_kwargs.get("sv_bits", 8)
            )
            coef_fmt = FixedPointFormat.for_range(
                machine.dual_coef_, int_kwargs.get("coef_bits", 16), signed=True
            )
            scale = (
                (machine.kernel_.gamma * sv_fmt.scale) ** 2 * coef_fmt.scale
            )
            columns.append(raw * scale + machine.bias_)
        return np.argmax(np.stack(columns, axis=1), axis=1)

    def accuracy(self, x: np.ndarray, y: np.ndarray) -> float:
        return float(np.mean(self.predict(x) == np.asarray(y)))

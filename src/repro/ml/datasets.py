"""Deterministic synthetic twins of the paper's datasets.

The real MNIST / HAR / ADULT bytes are not available offline, so each
generator produces a dataset with the *same shape contract* — number of
classes, feature dimensionality, and dtype/precision — and enough
class structure to train meaningful classifiers on.  Absolute accuracy
numbers are therefore dataset-specific, but every architectural result
(instruction counts, energy, binarisation trade-offs, SVM-vs-BNN
crossovers) exercises exactly the paper's code paths.

All generators are pure functions of their seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Dataset:
    """A train/test split with 8-bit integer features."""

    name: str
    x_train: np.ndarray  # (n, d) uint8 or int8-ranged ints
    y_train: np.ndarray  # (n,) int labels
    x_test: np.ndarray
    y_test: np.ndarray
    n_classes: int
    input_bits: int = 8

    @property
    def n_features(self) -> int:
        return self.x_train.shape[1]

    def __post_init__(self) -> None:
        if self.x_train.ndim != 2 or self.x_test.ndim != 2:
            raise ValueError("features must be 2-D arrays")
        if self.x_train.shape[1] != self.x_test.shape[1]:
            raise ValueError("train/test dimensionality mismatch")
        if len(self.x_train) != len(self.y_train):
            raise ValueError("train features/labels length mismatch")
        if len(self.x_test) != len(self.y_test):
            raise ValueError("test features/labels length mismatch")


def _smooth(image: np.ndarray, passes: int = 2) -> np.ndarray:
    """Cheap box blur so prototypes look like blobs, not static."""
    out = image.astype(float)
    for _ in range(passes):
        out = (
            out
            + np.roll(out, 1, 0)
            + np.roll(out, -1, 0)
            + np.roll(out, 1, 1)
            + np.roll(out, -1, 1)
        ) / 5.0
    return out


def synthetic_mnist(
    n_train: int = 600, n_test: int = 200, seed: int = 7
) -> Dataset:
    """A 10-class, 28x28, 8-bit "digit" dataset.

    Each class is a smooth random stroke pattern; samples add pixel
    noise and small translations.  Flattened row-wise to 784 elements
    like the paper's SVM input.
    """
    rng = np.random.default_rng(seed)
    side = 28
    prototypes = []
    for _ in range(10):
        canvas = np.zeros((side, side))
        # A few random strokes per class.
        for _ in range(rng.integers(3, 6)):
            r0, c0 = rng.integers(4, side - 4, size=2)
            length = rng.integers(6, 14)
            dr, dc = rng.choice([-1, 0, 1], size=2)
            if dr == 0 and dc == 0:
                dc = 1
            for step in range(length):
                r = int(np.clip(r0 + dr * step, 0, side - 1))
                c = int(np.clip(c0 + dc * step, 0, side - 1))
                canvas[r, c] = 255.0
        blurred = _smooth(canvas, passes=2)
        # Re-normalise to full 8-bit range so binarisation at the usual
        # threshold of 128 keeps the stroke structure.
        prototypes.append(blurred / blurred.max() * 255.0)

    def sample(count: int) -> tuple[np.ndarray, np.ndarray]:
        labels = rng.integers(0, 10, size=count)
        images = np.empty((count, side * side), dtype=np.uint8)
        for i, label in enumerate(labels):
            img = prototypes[label]
            img = np.roll(img, rng.integers(-2, 3), axis=0)
            img = np.roll(img, rng.integers(-2, 3), axis=1)
            noisy = img + rng.normal(0.0, 80.0, size=img.shape)
            images[i] = np.clip(noisy, 0, 255).astype(np.uint8).ravel()
        return images, labels

    x_train, y_train = sample(n_train)
    x_test, y_test = sample(n_test)
    return Dataset("MNIST(synthetic)", x_train, y_train, x_test, y_test, 10)


def synthetic_har(n_train: int = 400, n_test: int = 150, seed: int = 11) -> Dataset:
    """6-class, 561-feature activity-recognition twin (8-bit features).

    Classes are Gaussian clusters over correlated sensor-statistic
    features, standardised then affinely mapped into 0..255.
    """
    rng = np.random.default_rng(seed)
    d, k = 561, 6
    # Correlated feature basis shared by all classes.
    basis = rng.normal(size=(40, d))
    means = rng.normal(scale=2.0, size=(k, 40))

    def sample(count: int) -> tuple[np.ndarray, np.ndarray]:
        labels = rng.integers(0, k, size=count)
        latent = means[labels] + rng.normal(scale=1.0, size=(count, 40))
        feats = latent @ basis + rng.normal(scale=0.5, size=(count, d))
        lo, hi = np.percentile(feats, [1, 99])
        scaled = np.clip((feats - lo) / (hi - lo), 0.0, 1.0) * 255.0
        return scaled.astype(np.uint8), labels

    x_train, y_train = sample(n_train)
    x_test, y_test = sample(n_test)
    return Dataset("HAR(synthetic)", x_train, y_train, x_test, y_test, k)


def synthetic_adult(n_train: int = 500, n_test: int = 200, seed: int = 13) -> Dataset:
    """Binary, 15-feature census twin (8-bit integer features).

    Label depends on a noisy nonlinear score over a few features, so a
    linear model underfits — matching ADULT's character (the paper's
    SVMs reach only ~76 % on it).
    """
    rng = np.random.default_rng(seed)
    d = 15

    def sample(count: int) -> tuple[np.ndarray, np.ndarray]:
        feats = rng.integers(0, 256, size=(count, d)).astype(np.uint8)
        f = feats.astype(float) / 255.0
        score = (
            1.5 * f[:, 0]
            + f[:, 1] * f[:, 2]
            - 1.2 * f[:, 3]
            + 0.8 * np.square(f[:, 4])
            + rng.normal(scale=0.45, size=count)
        )
        labels = (score > np.median(score)).astype(int)
        return feats, labels

    x_train, y_train = sample(n_train)
    x_test, y_test = sample(n_test)
    return Dataset("ADULT(synthetic)", x_train, y_train, x_test, y_test, 2)


def binarize(x: np.ndarray, threshold: int = 128) -> np.ndarray:
    """Per-pixel binarisation (paper Section VIII): >= threshold -> 1.

    Turns 8-bit multiplications into AND gates on MOUSE.
    """
    return (np.asarray(x) >= threshold).astype(np.uint8)

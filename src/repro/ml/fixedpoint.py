"""Fixed-point quantisation.

The paper's custom SVMs avoid "any operations that would be inefficient
in MOUSE; all programs consist of bit-wise and integer arithmetic"
(Section VIII).  This module provides the float <-> integer bridge:
models are trained in floating point and their parameters quantised to
the formats MOUSE computes in (8-bit inputs/support vectors, wider
accumulators and coefficients).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class FixedPointFormat:
    """A signed/unsigned integer format with a power-of-two-free scale.

    value_float ~= value_int * scale
    """

    bits: int
    signed: bool
    scale: float

    def __post_init__(self) -> None:
        if self.bits < 1:
            raise ValueError("need at least one bit")
        if self.scale <= 0:
            raise ValueError("scale must be positive")

    @property
    def min_int(self) -> int:
        return -(1 << (self.bits - 1)) if self.signed else 0

    @property
    def max_int(self) -> int:
        return (1 << (self.bits - 1)) - 1 if self.signed else (1 << self.bits) - 1

    @classmethod
    def for_range(
        cls, values: np.ndarray, bits: int, signed: bool | None = None
    ) -> "FixedPointFormat":
        """Pick a scale covering the observed value range."""
        values = np.asarray(values, dtype=float)
        if signed is None:
            signed = bool((values < 0).any())
        peak = float(np.max(np.abs(values))) or 1.0
        top = (1 << (bits - 1)) - 1 if signed else (1 << bits) - 1
        return cls(bits=bits, signed=signed, scale=peak / top)


def quantize(values: np.ndarray, fmt: FixedPointFormat) -> np.ndarray:
    """Round to the nearest representable integer, saturating."""
    ints = np.round(np.asarray(values, dtype=float) / fmt.scale)
    return np.clip(ints, fmt.min_int, fmt.max_int).astype(np.int64)


def dequantize(ints: np.ndarray, fmt: FixedPointFormat) -> np.ndarray:
    return np.asarray(ints, dtype=float) * fmt.scale


def to_twos_complement(value: int, bits: int) -> int:
    """Encode a (possibly negative) int into its unsigned bit pattern."""
    if not -(1 << (bits - 1)) <= value < (1 << bits):
        raise ValueError(f"{value} does not fit in {bits} bits")
    return value & ((1 << bits) - 1)


def from_twos_complement(pattern: int, bits: int) -> int:
    """Decode an unsigned bit pattern as a signed integer."""
    if not 0 <= pattern < (1 << bits):
        raise ValueError(f"{pattern} is not a {bits}-bit pattern")
    if pattern >= 1 << (bits - 1):
        return pattern - (1 << bits)
    return pattern

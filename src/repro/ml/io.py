"""Model persistence.

Trained models are produced offline and written into MOUSE before
deployment (Section IV-B: "The instructions are written into these
tiles before deployment") — so a deployment flow needs durable model
artifacts.  NumPy ``.npz`` files hold everything needed to rebuild the
inference pipeline: support vectors / dual coefficients / kernel
parameters for SVMs, latent weights and biases for BNNs.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.ml.bnn import BNN, BNNConfig
from repro.ml.svm import OneVsRestSVM, PolyKernel, PolySVM


def save_svm(path: str | Path, model: OneVsRestSVM) -> None:
    """Persist a trained one-vs-rest SVM."""
    if not model.machines:
        raise ValueError("model is not fitted")
    payload: dict[str, np.ndarray] = {
        "format": np.array(["ovr-svm"]),
        "n_classes": np.array([model.n_classes]),
    }
    for index, machine in enumerate(model.machines):
        if machine.kernel_ is None:
            raise ValueError(f"classifier {index} is not fitted")
        payload[f"sv_{index}"] = machine.support_vectors_
        payload[f"coef_{index}"] = machine.dual_coef_
        payload[f"bias_{index}"] = np.array([machine.bias_])
        payload[f"kernel_{index}"] = np.array(
            [machine.kernel_.degree, machine.kernel_.gamma, machine.kernel_.coef0]
        )
    np.savez_compressed(path, **payload)


def load_svm(path: str | Path) -> OneVsRestSVM:
    """Rebuild a one-vs-rest SVM saved by :func:`save_svm`."""
    with np.load(path, allow_pickle=False) as data:
        if str(data["format"][0]) != "ovr-svm":
            raise ValueError("not an ovr-svm artifact")
        n_classes = int(data["n_classes"][0])
        model = OneVsRestSVM(n_classes)
        for index in range(n_classes):
            machine = PolySVM()
            machine.support_vectors_ = data[f"sv_{index}"]
            machine.dual_coef_ = data[f"coef_{index}"]
            machine.bias_ = float(data[f"bias_{index}"][0])
            degree, gamma, coef0 = data[f"kernel_{index}"]
            machine.kernel_ = PolyKernel(
                degree=int(degree), gamma=float(gamma), coef0=float(coef0)
            )
            model.machines.append(machine)
    return model


def save_bnn(path: str | Path, model: BNN) -> None:
    """Persist a trained BNN (latent weights, biases, topology)."""
    config = model.config
    payload: dict[str, np.ndarray] = {
        "format": np.array(["bnn"]),
        "name": np.array([config.name]),
        "input_size": np.array([config.input_size]),
        "hidden_sizes": np.array(config.hidden_sizes),
        "n_classes": np.array([config.n_classes]),
        "input_bits": np.array([config.input_bits]),
        "output_bits": np.array([config.output_bits]),
    }
    for index, (latent, bias) in enumerate(zip(model.latent, model.bias)):
        payload[f"latent_{index}"] = latent
        payload[f"bias_{index}"] = bias
    np.savez_compressed(path, **payload)


def load_bnn(path: str | Path) -> BNN:
    """Rebuild a BNN saved by :func:`save_bnn`."""
    with np.load(path, allow_pickle=False) as data:
        if str(data["format"][0]) != "bnn":
            raise ValueError("not a bnn artifact")
        config = BNNConfig(
            name=str(data["name"][0]),
            input_size=int(data["input_size"][0]),
            hidden_sizes=tuple(int(h) for h in data["hidden_sizes"]),
            n_classes=int(data["n_classes"][0]),
            input_bits=int(data["input_bits"][0]),
            output_bits=int(data["output_bits"][0]),
        )
        model = BNN(config)
        model.latent = [
            np.array(data[f"latent_{i}"]) for i in range(len(config.layer_shapes))
        ]
        model.bias = [
            np.array(data[f"bias_{i}"]) for i in range(len(config.layer_shapes))
        ]
    return model

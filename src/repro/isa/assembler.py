"""A small textual assembler for MOUSE programs.

Syntax, one instruction per line (``;`` or ``#`` start a comment)::

    ACTIVATE t0 cols 0,1            ; explicit column list (1-5)
    ACTIVATE t0 cols 0..511         ; bulk range
    PRESET0  t0 row 9
    NAND     t0 in 0,4 out 9
    MAJ3     t0 in 0,2,4 out 9
    READ     t0 row 8
    WRITE    t1 row 8
    HALT

``disassemble`` renders instruction objects back into this syntax, and
``assemble(disassemble(p)) == p`` for every program.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterable, Sequence

from repro.isa.instruction import (
    ActivateColumnsInstruction,
    HaltInstruction,
    Instruction,
    LogicInstruction,
    MemoryInstruction,
    decode_cached,
)
from repro.isa.opcodes import Opcode


class AssemblerError(ValueError):
    """Raised with the line number on any malformed source line."""


def _parse_tile(token: str, line_no: int) -> int:
    if not token.startswith("t"):
        raise AssemblerError(f"line {line_no}: expected tile 't<n>', got {token!r}")
    try:
        return int(token[1:])
    except ValueError:
        raise AssemblerError(f"line {line_no}: bad tile {token!r}") from None


def _parse_int_list(token: str, line_no: int) -> tuple[int, ...]:
    try:
        return tuple(int(part) for part in token.split(","))
    except ValueError:
        raise AssemblerError(f"line {line_no}: bad address list {token!r}") from None


def assemble_line(line: str, line_no: int = 0) -> Instruction | None:
    """Assemble one source line; returns None for blanks/comments."""
    code = line.split(";")[0].split("#")[0].strip()
    if not code:
        return None
    tokens = code.split()
    mnemonic = tokens[0].upper()
    try:
        opcode = Opcode[mnemonic]
    except KeyError:
        raise AssemblerError(f"line {line_no}: unknown mnemonic {mnemonic!r}") from None

    if opcode is Opcode.HALT:
        if len(tokens) != 1:
            raise AssemblerError(f"line {line_no}: HALT takes no operands")
        return HaltInstruction()

    if len(tokens) < 2:
        raise AssemblerError(f"line {line_no}: missing tile operand")
    tile = _parse_tile(tokens[1], line_no)

    if opcode is Opcode.ACTIVATE:
        if len(tokens) != 4 or tokens[2].lower() != "cols":
            raise AssemblerError(f"line {line_no}: ACTIVATE t<n> cols <list|a..b>")
        spec = tokens[3]
        if ".." in spec:
            first_s, last_s = spec.split("..")
            return ActivateColumnsInstruction(
                tile=tile, columns=(int(first_s), int(last_s)), bulk=True
            )
        return ActivateColumnsInstruction(
            tile=tile, columns=_parse_int_list(spec, line_no)
        )

    if opcode.is_memory:
        if len(tokens) != 4 or tokens[2].lower() != "row":
            raise AssemblerError(f"line {line_no}: {mnemonic} t<n> row <r>")
        return MemoryInstruction(op=mnemonic, tile=tile, row=int(tokens[3]))

    # Logic format: <GATE> t<n> in a,b[,c] out r
    if (
        len(tokens) != 6
        or tokens[2].lower() != "in"
        or tokens[4].lower() != "out"
    ):
        raise AssemblerError(f"line {line_no}: {mnemonic} t<n> in <rows> out <row>")
    return LogicInstruction(
        gate=mnemonic,
        tile=tile,
        input_rows=_parse_int_list(tokens[3], line_no),
        output_row=int(tokens[5]),
    )


def assemble(source: str | Iterable[str]) -> list[Instruction]:
    """Assemble a program from source text (or an iterable of lines)."""
    lines = source.splitlines() if isinstance(source, str) else list(source)
    program: list[Instruction] = []
    for line_no, line in enumerate(lines, start=1):
        instr = assemble_line(line, line_no)
        if instr is not None:
            program.append(instr)
    return program


def disassemble_one(instr: Instruction) -> str:
    """Render one instruction in assembler syntax."""
    if isinstance(instr, HaltInstruction):
        return "HALT"
    if isinstance(instr, ActivateColumnsInstruction):
        if instr.bulk:
            return f"ACTIVATE t{instr.tile} cols {instr.columns[0]}..{instr.columns[1]}"
        return f"ACTIVATE t{instr.tile} cols {','.join(map(str, instr.columns))}"
    if isinstance(instr, MemoryInstruction):
        return f"{instr.op.upper()} t{instr.tile} row {instr.row}"
    rows = ",".join(str(r) for r in instr.input_rows)
    return f"{instr.gate.upper()} t{instr.tile} in {rows} out {instr.output_row}"


def disassemble(program: Sequence[Instruction]) -> str:
    """Render a program, one instruction per line."""
    return "\n".join(disassemble_one(i) for i in program)


@lru_cache(maxsize=65536)
def disassemble_word(word: int) -> str:
    """Assembler text for an encoded word, memoized.

    The telemetry path disassembles the current instruction on every
    DECODE microstep; an intermittent run replays the same handful of
    words thousands of times, so keying the text by the 64-bit encoding
    makes that a dict hit.  Same bound as the decode cache.
    """
    return disassemble_one(decode_cached(word))

"""Instruction objects and their 64-bit encodings.

Three instruction kinds exist (paper Figure 6 / Section IV-B):
logic, memory (including the explicit gate-output presets), and
Activate Columns.  ``encode``/``decode`` round-trip every instruction
through the exact bit layout in :mod:`repro.isa.encoding`.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Union

from repro.isa import encoding
from repro.isa.opcodes import Opcode
from repro.logic.gates import GateSpec
from repro.logic.library import gate_by_name


def _check_tile(tile: int, what: str) -> None:
    """Tile addresses must fit the ISA's tile field at construction
    time, not fail deep inside the encoder or simulator."""
    if not 0 <= tile <= encoding.MAX_TILE:
        raise ValueError(
            f"{what}: tile {tile} outside the addressable range "
            f"0..{encoding.MAX_TILE}"
        )


def _check_row(row: int, what: str) -> None:
    """Row addresses must fit the ISA's 10-bit row field."""
    if not 0 <= row <= encoding.MAX_ROW:
        raise ValueError(
            f"{what}: row {row} outside the addressable range "
            f"0..{encoding.MAX_ROW}"
        )


@dataclass(frozen=True)
class LogicInstruction:
    """One gate, executed in every active column of the target tile(s)."""

    gate: str  # library gate name == opcode name
    tile: int
    input_rows: tuple[int, ...]
    output_row: int

    def __post_init__(self) -> None:
        opcode = self.opcode  # validates the gate name
        if len(self.input_rows) != opcode.gate_arity:
            raise ValueError(
                f"{self.gate} takes {opcode.gate_arity} input rows, "
                f"got {len(self.input_rows)}"
            )
        _check_tile(self.tile, self.gate)
        for row in self.input_rows:
            _check_row(row, f"{self.gate} input")
        _check_row(self.output_row, f"{self.gate} output")

    @property
    def opcode(self) -> Opcode:
        try:
            op = Opcode[self.gate.upper()]
        except KeyError:
            raise ValueError(f"gate {self.gate!r} has no opcode") from None
        if not op.is_logic:
            raise ValueError(f"{self.gate!r} is not a logic opcode")
        return op

    @property
    def spec(self) -> GateSpec:
        return gate_by_name(self.gate)

    def __str__(self) -> str:
        rows = ",".join(str(r) for r in self.input_rows)
        return f"{self.gate.upper()} t{self.tile} in[{rows}] out {self.output_row}"


@dataclass(frozen=True)
class MemoryInstruction:
    """Buffer-mediated read/write, or an active-column preset write."""

    op: str  # READ | WRITE | PRESET0 | PRESET1
    tile: int
    row: int

    def __post_init__(self) -> None:
        if self.opcode not in (
            Opcode.READ,
            Opcode.WRITE,
            Opcode.PRESET0,
            Opcode.PRESET1,
        ):
            raise ValueError(f"{self.op!r} is not a memory opcode")
        _check_tile(self.tile, self.op)
        _check_row(self.row, self.op)

    @property
    def opcode(self) -> Opcode:
        try:
            return Opcode[self.op.upper()]
        except KeyError:
            raise ValueError(f"unknown memory op {self.op!r}") from None

    def __str__(self) -> str:
        return f"{self.op.upper()} t{self.tile} row {self.row}"


@dataclass(frozen=True)
class ActivateColumnsInstruction:
    """Latch the set of active columns in the target tile(s).

    Either up to five explicit column addresses, or — with
    ``bulk=True`` — an inclusive ``(first, last)`` range (the bulk
    addressing of Section IV-B).
    """

    tile: int
    columns: tuple[int, ...]
    bulk: bool = False

    def __post_init__(self) -> None:
        if self.bulk:
            if len(self.columns) != 2:
                raise ValueError("bulk activation takes (first, last)")
            if self.columns[0] > self.columns[1]:
                raise ValueError("empty bulk column range")
        else:
            if not 1 <= len(self.columns) <= encoding.MAX_ACTIVATE_COLUMNS:
                raise ValueError(
                    "activate columns takes 1-"
                    f"{encoding.MAX_ACTIVATE_COLUMNS} addresses"
                )
            if len(set(self.columns)) != len(self.columns):
                raise ValueError("duplicate column addresses")
        _check_tile(self.tile, "ACTIVATE")
        for column in self.columns:
            if not 0 <= column <= encoding.MAX_COL:
                raise ValueError(
                    f"ACTIVATE: column {column} outside the addressable "
                    f"range 0..{encoding.MAX_COL}"
                )

    @property
    def opcode(self) -> Opcode:
        return Opcode.ACTIVATE

    @property
    def column_count(self) -> int:
        """Number of columns this instruction activates."""
        if self.bulk:
            return self.columns[1] - self.columns[0] + 1
        return len(self.columns)

    def __str__(self) -> str:
        if self.bulk:
            return f"ACTIVATE t{self.tile} cols {self.columns[0]}..{self.columns[1]}"
        return f"ACTIVATE t{self.tile} cols {','.join(map(str, self.columns))}"


@dataclass(frozen=True)
class HaltInstruction:
    """End of program (the inference result is in the tiles)."""

    @property
    def opcode(self) -> Opcode:
        return Opcode.HALT

    def __str__(self) -> str:
        return "HALT"


Instruction = Union[
    LogicInstruction, MemoryInstruction, ActivateColumnsInstruction, HaltInstruction
]


def encode(instr: Instruction) -> int:
    """Encode an instruction into its 64-bit word."""
    op = instr.opcode
    if isinstance(instr, LogicInstruction):
        return encoding.pack_logic(op, instr.tile, instr.input_rows, instr.output_row)
    if isinstance(instr, MemoryInstruction):
        return encoding.pack_memory(op, instr.tile, instr.row)
    if isinstance(instr, ActivateColumnsInstruction):
        return encoding.pack_activate(op, instr.tile, instr.columns, instr.bulk)
    if isinstance(instr, HaltInstruction):
        return encoding.pack_header(op, 0)
    raise TypeError(f"cannot encode {type(instr).__name__}")


def decode(word: int) -> Instruction:
    """Decode a 64-bit word back into an instruction object."""
    if not 0 <= word < 2**64:
        raise ValueError("instruction words are 64 bits")
    opcode_value, tile = encoding.unpack_header(word)
    opcode = Opcode(opcode_value)
    if opcode is Opcode.HALT:
        return HaltInstruction()
    if opcode is Opcode.ACTIVATE:
        columns, bulk = encoding.unpack_activate(word)
        return ActivateColumnsInstruction(tile=tile, columns=columns, bulk=bulk)
    if opcode.is_memory:
        row = encoding.unpack_memory(word)
        return MemoryInstruction(op=opcode.name, tile=tile, row=row)
    input_rows, output_row = encoding.unpack_logic(word, opcode.gate_arity)
    return LogicInstruction(
        gate=opcode.name, tile=tile, input_rows=input_rows, output_row=output_row
    )


# Instruction objects are frozen and decoding is pure, so the fetch hot
# path can share one object per distinct word.  Bounded: a rogue word
# stream (fault injection corrupts PC/memory) cannot grow this without
# limit.  The controller uses this; plain ``decode`` stays available for
# callers that want a fresh object.
decode_cached = lru_cache(maxsize=65536)(decode)

"""The MOUSE instruction set (paper Figure 6).

Instructions are 64-bit words of three kinds: logic operations
(gate + tile + 2-3 input rows + output row), memory operations
(read / write / output presets, tile + row), and *Activate Columns*
(tile + up to five column addresses, or a bulk range).  Opcodes are
4 bits; tile addresses 9 bits; row and column addresses 10 bits.
"""

from repro.isa.opcodes import Opcode
from repro.isa.instruction import (
    ActivateColumnsInstruction,
    HaltInstruction,
    Instruction,
    LogicInstruction,
    MemoryInstruction,
    decode,
    encode,
)
from repro.isa.assembler import assemble, disassemble

__all__ = [
    "Opcode",
    "Instruction",
    "LogicInstruction",
    "MemoryInstruction",
    "ActivateColumnsInstruction",
    "HaltInstruction",
    "encode",
    "decode",
    "assemble",
    "disassemble",
]

"""Opcode assignments.

Sixteen 4-bit opcodes: two buffer-mediated memory operations, two
preset writes (the gate-output presets the paper's Figure 8 discussion
leaves implicit are explicit write instructions here), the Activate
Columns configuration instruction, ten logic gates, and HALT.
"""

from __future__ import annotations

import enum


class Opcode(enum.IntEnum):
    READ = 0  # tile row -> controller buffer
    WRITE = 1  # controller buffer -> tile row
    ACTIVATE = 2  # latch active columns
    PRESET0 = 3  # write logic 0 into row, active columns only
    PRESET1 = 4  # write logic 1 into row, active columns only
    NOT = 5
    BUF = 6
    NAND = 7
    AND = 8
    NOR = 9
    OR = 10
    NAND3 = 11
    AND3 = 12
    MIN3 = 13
    MAJ3 = 14
    HALT = 15

    @property
    def is_logic(self) -> bool:
        return Opcode.NOT <= self <= Opcode.MAJ3

    @property
    def is_memory(self) -> bool:
        return self in (Opcode.READ, Opcode.WRITE, Opcode.PRESET0, Opcode.PRESET1)

    @property
    def gate_arity(self) -> int:
        """Number of input rows for logic opcodes."""
        if self in (Opcode.NOT, Opcode.BUF):
            return 1
        if self in (Opcode.NAND, Opcode.AND, Opcode.NOR, Opcode.OR):
            return 2
        if self in (Opcode.NAND3, Opcode.AND3, Opcode.MIN3, Opcode.MAJ3):
            return 3
        raise ValueError(f"{self.name} is not a logic opcode")


#: Logic opcodes <-> library gate names (identical by construction).
LOGIC_OPCODES = tuple(op for op in Opcode if op.is_logic)

"""Bit-level packing of 64-bit MOUSE instruction words.

Field layout (LSB first):

====================  ==========================================
bits                  field
====================  ==========================================
0-3                   opcode (4 bits)
4-12                  tile address (9 bits)
*logic format*
13-22 / 23-32 /33-42  input rows 1-3 (10 bits each; unused = 0)
43-52                 output row (10 bits)
*memory format*
13-22                 row (10 bits)
*activate-columns format*
13                    bulk flag (1 = slots 0/1 are a column range)
14-63                 five 10-bit column slots; unused slots
                      duplicate slot 0 (decode de-duplicates)
====================  ==========================================

Bits not listed for a format are don't-care and encode as zero, per
the paper ("a number of bits remain as don't care").
"""

from __future__ import annotations

OPCODE_BITS = 4
TILE_BITS = 9
ROW_BITS = 10
COL_BITS = 10
MAX_TILE = (1 << TILE_BITS) - 1
MAX_ROW = (1 << ROW_BITS) - 1
MAX_COL = (1 << COL_BITS) - 1
MAX_ACTIVATE_COLUMNS = 5

_TILE_SHIFT = OPCODE_BITS
_BODY_SHIFT = OPCODE_BITS + TILE_BITS  # 13


def _check(value: int, limit: int, label: str) -> int:
    if not 0 <= value <= limit:
        raise ValueError(f"{label} {value} out of range 0..{limit}")
    return value


def pack_header(opcode: int, tile: int) -> int:
    _check(opcode, (1 << OPCODE_BITS) - 1, "opcode")
    _check(tile, MAX_TILE, "tile")
    return opcode | (tile << _TILE_SHIFT)


def unpack_header(word: int) -> tuple[int, int]:
    return word & ((1 << OPCODE_BITS) - 1), (word >> _TILE_SHIFT) & MAX_TILE


def pack_logic(opcode: int, tile: int, input_rows: tuple[int, ...], output_row: int) -> int:
    if not 1 <= len(input_rows) <= 3:
        raise ValueError("logic format carries 1-3 input rows")
    word = pack_header(opcode, tile)
    for slot, row in enumerate(input_rows):
        _check(row, MAX_ROW, "input row")
        word |= row << (_BODY_SHIFT + slot * ROW_BITS)
    _check(output_row, MAX_ROW, "output row")
    word |= output_row << (_BODY_SHIFT + 3 * ROW_BITS)
    return word


def unpack_logic(word: int, arity: int) -> tuple[tuple[int, ...], int]:
    rows = tuple(
        (word >> (_BODY_SHIFT + slot * ROW_BITS)) & MAX_ROW for slot in range(arity)
    )
    output_row = (word >> (_BODY_SHIFT + 3 * ROW_BITS)) & MAX_ROW
    return rows, output_row


def pack_memory(opcode: int, tile: int, row: int) -> int:
    _check(row, MAX_ROW, "row")
    return pack_header(opcode, tile) | (row << _BODY_SHIFT)


def unpack_memory(word: int) -> int:
    return (word >> _BODY_SHIFT) & MAX_ROW


_BULK_SHIFT = _BODY_SHIFT  # bit 13
_COL_SHIFT = _BODY_SHIFT + 1  # bit 14


def pack_activate(opcode: int, tile: int, columns: tuple[int, ...], bulk: bool) -> int:
    if bulk:
        if len(columns) != 2:
            raise ValueError("bulk activation carries exactly (first, last)")
        first, last = columns
        if first > last:
            raise ValueError(f"bulk range {first}..{last} is empty")
    elif not 1 <= len(columns) <= MAX_ACTIVATE_COLUMNS:
        raise ValueError(
            f"activate columns carries 1-{MAX_ACTIVATE_COLUMNS} addresses"
        )
    word = pack_header(opcode, tile)
    if bulk:
        word |= 1 << _BULK_SHIFT
    slots = list(columns) + [columns[0]] * (MAX_ACTIVATE_COLUMNS - len(columns))
    for slot, col in enumerate(slots):
        _check(col, MAX_COL, "column")
        word |= col << (_COL_SHIFT + slot * COL_BITS)
    return word


def unpack_activate(word: int) -> tuple[tuple[int, ...], bool]:
    bulk = bool((word >> _BULK_SHIFT) & 1)
    slots = [
        (word >> (_COL_SHIFT + slot * COL_BITS)) & MAX_COL
        for slot in range(MAX_ACTIVATE_COLUMNS)
    ]
    if bulk:
        return (slots[0], slots[1]), True
    # Unused slots duplicate slot 0; preserve order, drop duplicates.
    seen: list[int] = []
    for col in slots:
        if col not in seen:
            seen.append(col)
    # All-duplicate encodings collapse to the single real column.
    return tuple(seen), False

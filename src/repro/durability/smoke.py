"""Durability smoke test: seeded kill-resume matrix + image validation.

    python -m repro.durability.smoke [--out DIR] [--quick]

Four checks:

1. **Kill-resume matrix**: seeded SIGKILL campaigns over the SVM and
   BNN intermittent workloads — 200+ kill points at instruction
   boundaries, a seeded fraction striking mid-image-write, a seeded
   fraction followed by torn/corrupt-generation fuzzing — every
   campaign's final breakdown and readout must be **byte-identical**
   to its uninterrupted run.
2. **CRC detection**: every fuzzed generation must have been rejected
   by CRC and absorbed by the surviving generation (``fallbacks``
   equals the fuzz count).
3. **Image schema**: a freshly written NVImage round-trips through
   ``encode_image``/``decode_image``, carries the v1 schema tag, and
   rejects a flipped byte.
4. **Resumable sweep**: a checkpointed ``FaultCampaign`` killed
   per-trial store produces the same report JSON as a straight run.

Exit status 0 means host-level durability holds; wired into
``make crash-smoke`` (part of ``make test``).
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

from repro.durability.crashsim import CrashPlan, run_crash_campaign
from repro.durability.image import (
    IMAGE_SCHEMA,
    ImageCorruptError,
    decode_image,
    encode_image,
)

#: (workload, kills, seed) — 210 seeded SIGKILL points in the full
#: matrix, comfortably over the 200-point acceptance bar; ``--quick``
#: runs a 60-point subset for fast iteration.
MATRIX = (("svm", 120, 11), ("bnn", 90, 12))
QUICK_MATRIX = (("svm", 30, 11), ("bnn", 30, 12))


def _check_image_schema(failures: list[str]) -> None:
    payload = {"kind": "probe", "value": [1, 2, 3]}
    frame = encode_image(payload, seq=7)
    decoded, seq = decode_image(frame)
    if decoded != payload or seq != 7:
        failures.append("NVImage encode/decode round trip diverged")
    header = json.loads(frame[12 : 12 + int.from_bytes(frame[8:12], "big")])
    if header.get("schema") != IMAGE_SCHEMA:
        failures.append(
            f"image header carries schema {header.get('schema')!r}, "
            f"expected {IMAGE_SCHEMA}"
        )
    corrupt = bytearray(frame)
    corrupt[-1] ^= 0xFF
    try:
        decode_image(bytes(corrupt))
        failures.append("CRC accepted a corrupted image body")
    except ImageCorruptError:
        pass


def _check_resumable_campaign(failures: list[str], out: Path) -> None:
    from repro.devices.parameters import MODERN_STT
    from repro.faults.campaign import FaultCampaign, svm_workload
    from repro.faults.plan import FaultPlan

    workload = svm_workload(MODERN_STT)
    plan = FaultPlan(outage_rate=0.01, verify_retry=True)
    straight = FaultCampaign(workload, plan, trials=3, seed=5).run()
    ckpt_dir = out / "campaign-store"
    # Simulate a killed run: persist only the first trial, then
    # "resume" the full campaign against the same store.
    FaultCampaign(workload, plan, trials=1, seed=5).run(
        checkpoint_dir=str(ckpt_dir)
    )
    resumed = FaultCampaign(workload, plan, trials=3, seed=5).run(
        checkpoint_dir=str(ckpt_dir)
    )
    if resumed.to_json() != straight.to_json():
        failures.append(
            "resumed fault campaign diverged from the straight-through run"
        )


def run_smoke(out_dir: str, quick: bool = False) -> int:
    failures: list[str] = []
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)

    total_kills = 0
    total_mid_write = 0
    total_fuzzed = 0
    reports = []
    for workload, kills, seed in (QUICK_MATRIX if quick else MATRIX):
        image_dir = out / f"images-{workload}-{seed}"
        report = run_crash_campaign(
            CrashPlan(workload=workload, kills=kills, seed=seed), image_dir
        )
        reports.append(report.to_json_obj())
        total_kills += report.kills
        total_mid_write += report.mid_write_kills
        total_fuzzed += report.fuzzed
        if not report.identical:
            failures.append(
                f"{workload}: resumed report is not byte-identical to the "
                "uninterrupted run"
            )
        if report.fallbacks != report.fuzzed:
            failures.append(
                f"{workload}: {report.fuzzed} generations fuzzed but only "
                f"{report.fallbacks} CRC fallbacks observed"
            )
    if total_mid_write == 0:
        failures.append("kill matrix never struck mid-image-write")
    if total_fuzzed == 0:
        failures.append("kill matrix never fuzzed a generation")
    if not quick and total_kills < 200:
        failures.append(
            f"kill matrix placed only {total_kills} kill points (< 200)"
        )

    _check_image_schema(failures)
    _check_resumable_campaign(failures, out)

    from repro.durability.atomic import atomic_write_json

    atomic_write_json(out / "crash_report.json", reports, sort_keys=True)

    if failures:
        for failure in failures:
            print(f"crash-smoke FAILED: {failure}", file=sys.stderr)
        return 1
    print(
        f"crash-smoke ok: {total_kills} SIGKILLs "
        f"({total_mid_write} mid-image-write) across "
        f"{len(reports)} workloads, {total_fuzzed} torn/corrupt "
        "generations absorbed, all resumed reports byte-identical"
    )
    print(f"  report: {out / 'crash_report.json'}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", metavar="DIR", help="directory for artifacts")
    parser.add_argument(
        "--quick", action="store_true", help="60-kill subset for iteration"
    )
    args = parser.parse_args(argv)
    if args.out:
        return run_smoke(args.out, quick=args.quick)
    with tempfile.TemporaryDirectory(prefix="repro-crash-smoke-") as tmp:
        return run_smoke(tmp, quick=args.quick)


if __name__ == "__main__":
    sys.exit(main())

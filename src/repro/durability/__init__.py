"""Host-level durability: crash-consistent images and exact resume.

The paper's intermittency story — idempotent CRAM gates, a dual
non-volatile PC with a parity bit, duplicated Activate-Columns
registers — guarantees that the *simulated machine* survives any power
cut with at most one repeated instruction.  This package makes the
same guarantee real for the *host process* running the simulation:

* :mod:`repro.durability.atomic` — write-temp + fsync + ``os.replace``
  helpers so no artifact (manifest, report, CSV, image) can ever be
  torn on disk.
* :mod:`repro.durability.image` — the **NVImage** format
  (``repro.durability.image/v1``): a versioned, CRC-checksummed
  snapshot of the full architectural state, committed atomically in a
  two-generation A/B scheme that mirrors the dual-PC-with-parity
  protocol (a torn or corrupt generation is detected by CRC and the
  previous generation restores instead).
* :mod:`repro.durability.state` — capture/restore of machines,
  ledgers, harvesting configs, and engine run context, bit-exact.
* :mod:`repro.durability.checkpoint` — checkpoint policy
  (every N committed instructions and at outage boundaries) threaded
  through :class:`~repro.harvest.intermittent.IntermittentRun` and
  :class:`~repro.harvest.intermittent.ProfileRun`, plus exact resume.
* :mod:`repro.durability.resume` — per-task result stores that make
  the Fig. 9 sweep, Table IV accuracy, and fault campaigns resumable
  with byte-identical merged output.
* :mod:`repro.durability.signals` — graceful SIGINT/SIGTERM handling
  for long-running CLI commands.
* :mod:`repro.durability.crashsim` — the seeded crash-injection
  harness: fork, SIGKILL at randomized instruction boundaries and
  mid-image-write, resume, assert byte-identical reports.
"""

from repro.durability.atomic import (
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
)
from repro.durability.image import (
    GENERATIONS,
    IMAGE_SCHEMA,
    ImageCorruptError,
    NoValidImageError,
    NVImageStore,
    decode_image,
    encode_image,
)
from repro.durability.checkpoint import (
    CheckpointPolicy,
    Checkpointer,
    resume_intermittent,
    resume_profile,
)
from repro.durability.resume import TaskStore, run_resumable
from repro.durability.signals import Interrupted, graceful_signals

__all__ = [
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_write_text",
    "GENERATIONS",
    "IMAGE_SCHEMA",
    "ImageCorruptError",
    "NoValidImageError",
    "NVImageStore",
    "decode_image",
    "encode_image",
    "CheckpointPolicy",
    "Checkpointer",
    "resume_intermittent",
    "resume_profile",
    "TaskStore",
    "run_resumable",
    "Interrupted",
    "graceful_signals",
]

"""Checkpoint policy and the engine-facing hooks.

A :class:`Checkpointer` owns an :class:`~repro.durability.image.NVImageStore`
and decides *when* a run commits a new image generation:

* every ``policy.period`` committed instructions (the host-side analogue
  of the paper's Section IV-D checkpoint-frequency knob);
* at every outage boundary (right after ``power_off``), so a host crash
  during the long charging wait costs nothing on resume.

The payloads it writes are self-describing (``kind`` tag + everything
needed to rebuild the engine), so :func:`resume_intermittent` /
:func:`resume_profile` reconstruct a run object whose remaining
execution is bit-identical to the uninterrupted run's.

When telemetry is enabled the checkpointer emits ``checkpoint.commit``
events and maintains ``checkpoint.writes`` / ``checkpoint.bytes``
counters plus a ``checkpoint.write_size`` histogram; ``checkpoint.resumes``
and ``checkpoint.fallbacks`` are counted by the resume helpers.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Optional, Union

from repro.durability.image import NVImageStore, encode_image
from repro.durability.state import (
    capture_machine,
    decode_breakdown,
    decode_config,
    decode_params,
    decode_profile,
    encode_breakdown,
    encode_config,
    encode_params,
    encode_profile,
    restore_machine,
)
from repro.energy.metrics import EnergyLedger
from repro.energy.model import InstructionCostModel
from repro.harvest.intermittent import IntermittentRun, ProfileRun


@dataclass(frozen=True)
class CheckpointPolicy:
    """When to write a new image generation.

    ``period`` — committed instructions between periodic images
    (instruction boundaries only).  ``at_outages`` — also image at every
    simulated outage boundary, where the machine state is smallest and
    the next event is a (host-time-free) charging wait.
    """

    period: int = 1024
    at_outages: bool = True

    def __post_init__(self) -> None:
        if self.period < 1:
            raise ValueError("checkpoint period must be >= 1")


class Checkpointer:
    """Writes crash-consistent NVImages on behalf of a run engine.

    The engines call :meth:`on_commit` after every committed
    instruction, :meth:`on_outage` right after a simulated power-off,
    and :meth:`on_profile_point` at every closed-form burst boundary;
    the policy decides which of those become actual image commits.
    """

    def __init__(
        self,
        store: Union[NVImageStore, str, Path],
        policy: Optional[CheckpointPolicy] = None,
        telemetry=None,
    ) -> None:
        if not isinstance(store, NVImageStore):
            store = NVImageStore(store)
        self.store = store
        self.policy = policy or CheckpointPolicy()
        self.telemetry = telemetry
        #: Instruction count at the last committed image.
        self._last_count = 0
        self.commits = 0

    def _resolve_obs(self):
        if self.telemetry is not None:
            t = self.telemetry
        else:
            from repro.obs import current

            t = current()
        return t if t.enabled else None

    # ------------------------------------------------------------------
    # Engine hooks
    # ------------------------------------------------------------------

    def on_commit(self, run: IntermittentRun) -> None:
        """Instruction-boundary hook: image every ``period`` commits and
        at the halt boundary (so a finished run always leaves a final
        image behind)."""
        due = run.executed - self._last_count >= self.policy.period
        if due or run.mouse.controller.halted:
            self._commit(capture_intermittent(run, phase="powered"), run.time)
            self._last_count = run.executed

    def on_outage(self, run: IntermittentRun) -> None:
        """Outage-boundary hook: fires right after ``power_off``."""
        if self.policy.at_outages:
            self._commit(capture_intermittent(run, phase="outage"), run.time)
            self._last_count = run.executed

    def on_profile_point(self, run: ProfileRun) -> None:
        """Burst-boundary hook for the closed-form engine."""
        count = run.ledger.breakdown.instructions
        if count - self._last_count >= self.policy.period:
            self._commit(capture_profile(run), run.time)
            self._last_count = count

    # ------------------------------------------------------------------

    def _commit(self, payload: dict, sim_time: float) -> int:
        seq = self.store.commit(payload)
        self.commits += 1
        obs = self._resolve_obs()
        if obs is not None:
            size = len(encode_image(payload, seq))
            obs.counter("checkpoint.writes").inc()
            obs.counter("checkpoint.bytes").inc(size)
            obs.histogram("checkpoint.write_size").observe(size)
            # The payload's engine discriminator travels as `image_kind`:
            # a data key named `kind` would clobber the event's own kind
            # in the flat JSONL wire format.
            obs.emit(
                "checkpoint.commit",
                sim_time,
                seq=seq,
                image_kind=payload.get("kind"),
                instructions=payload.get("executed")
                or payload.get("ledger", {}).get("instructions"),
            )
        return seq


# ----------------------------------------------------------------------
# Payload builders
# ----------------------------------------------------------------------


def capture_intermittent(run: IntermittentRun, phase: str) -> dict[str, Any]:
    """Full resumable state of a cycle-accurate run.

    ``phase`` is ``"powered"`` (instruction boundary, machine live) or
    ``"outage"`` (machine off, capacitor below the restart bound).
    """
    if phase not in ("powered", "outage"):
        raise ValueError(f"unknown resume phase {phase!r}")
    return {
        "kind": "intermittent",
        "phase": phase,
        "machine": capture_machine(run.mouse),
        "config": encode_config(run.config),
        "time": run.time,
        "executed": run.executed,
        "commits_in_window": run._commits_in_window,
        "drawn_in_window": run._drawn_in_window,
        "stalled_pc": run._stalled_pc,
        "vcap_sample_period": run.vcap_sample_period,
    }


def capture_profile(run: ProfileRun) -> dict[str, Any]:
    """Full resumable state of a closed-form profile run: the progress
    cursor plus everything needed to rebuild the engine."""
    if run.ledger is None:
        raise ValueError("profile run has not started; nothing to capture")
    return {
        "kind": "profile",
        "profile": encode_profile(run.profile),
        "params": encode_params(run.cost.params),
        "config": encode_config(run.config),
        "dead_fraction": run.dead_fraction,
        "checkpoint_period": run.checkpoint_period,
        "time": run.time,
        "seg_index": run.seg_index,
        "remaining": run.remaining,
        "ledger": encode_breakdown(run.ledger.breakdown),
    }


# ----------------------------------------------------------------------
# Resume
# ----------------------------------------------------------------------


def _load(store: Union[NVImageStore, str, Path], telemetry) -> tuple[dict, int, NVImageStore]:
    if not isinstance(store, NVImageStore):
        store = NVImageStore(store)
    before = store.fallbacks
    payload, seq = store.load()
    if telemetry is None:
        from repro.obs import current

        telemetry = current()
    if telemetry is not None and telemetry.enabled:
        telemetry.counter("checkpoint.resumes").inc()
        if store.fallbacks > before:
            telemetry.counter("checkpoint.fallbacks").inc(
                store.fallbacks - before
            )
    return payload, seq, store


def resume_intermittent(
    store: Union[NVImageStore, str, Path],
    telemetry=None,
    checkpointer: Optional[Checkpointer] = None,
) -> IntermittentRun:
    """Rebuild an :class:`IntermittentRun` from the newest valid image.

    Calling ``run()`` on the result continues the run exactly where the
    image was taken; the returned breakdown is byte-identical to the
    uninterrupted run's.
    """
    payload, _seq, _store = _load(store, telemetry)
    if payload.get("kind") != "intermittent":
        raise ValueError(
            f"image holds a {payload.get('kind')!r} run, not an "
            "intermittent one"
        )
    mouse = restore_machine(payload["machine"])
    run = IntermittentRun(
        mouse,
        decode_config(payload["config"]),
        telemetry=telemetry,
        vcap_sample_period=int(payload["vcap_sample_period"]),
        checkpointer=checkpointer,
    )
    run.time = payload["time"]
    run.executed = int(payload["executed"])
    run._commits_in_window = int(payload["commits_in_window"])
    run._drawn_in_window = payload["drawn_in_window"]
    stalled = payload["stalled_pc"]
    run._stalled_pc = None if stalled is None else int(stalled)
    run._resume_phase = payload["phase"]
    if checkpointer is not None:
        checkpointer._last_count = run.executed
    return run


def resume_profile(
    store: Union[NVImageStore, str, Path],
    telemetry=None,
    checkpointer: Optional[Checkpointer] = None,
) -> ProfileRun:
    """Rebuild a :class:`ProfileRun` from the newest valid image."""
    payload, _seq, _store = _load(store, telemetry)
    if payload.get("kind") != "profile":
        raise ValueError(
            f"image holds a {payload.get('kind')!r} run, not a profile one"
        )
    params = decode_params(payload["params"])
    run = ProfileRun(
        decode_profile(payload["profile"]),
        InstructionCostModel(params),
        decode_config(payload["config"]),
        dead_fraction=payload["dead_fraction"],
        checkpoint_period=int(payload["checkpoint_period"]),
        telemetry=telemetry,
        checkpointer=checkpointer,
    )
    run.time = payload["time"]
    run.seg_index = int(payload["seg_index"])
    remaining = payload["remaining"]
    run.remaining = None if remaining is None else int(remaining)
    run.ledger = EnergyLedger(breakdown=decode_breakdown(payload["ledger"]))
    run._resumed = True
    if checkpointer is not None:
        checkpointer._last_count = run.ledger.breakdown.instructions
    return run

"""The NVImage format and its two-generation A/B store.

An **NVImage** is a crash-consistent on-disk snapshot of the full
architectural + run state, framed as::

    MAGIC (8 B)  |  header length (4 B, big-endian)  |  header JSON  |  body

The header carries the schema tag (``repro.durability.image/v1``), a
monotonically increasing **sequence number**, the body length, and a
CRC-32 of the body.  Any torn or corrupted file — truncated tail,
flipped byte, garbage header — fails validation and is treated as
absent.

:class:`NVImageStore` keeps **two generations** (``nvimage.0`` /
``nvimage.1``) and always commits a new image into the slot *not*
holding the latest valid generation, via write-temp -> fsync ->
``os.replace``.  This mirrors the paper's dual-PC-with-parity protocol
(Section V-B): the valid generation is never written, so a valid image
exists at every instant; the sequence number plays the parity bit's
role of naming the valid copy, and a torn commit is detected by CRC
and simply loses to the surviving generation.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from pathlib import Path
from typing import Any, Callable, Optional

from repro.durability.atomic import _fsync_directory, _temp_path

IMAGE_SCHEMA = "repro.durability.image/v1"
MAGIC = b"MOUSEIMG"
_HEADER_LEN = struct.Struct(">I")

#: Slot filenames of the two generations.
GENERATIONS = ("nvimage.0", "nvimage.1")


class ImageCorruptError(ValueError):
    """The bytes do not form a valid NVImage (torn, corrupt, or alien)."""


class NoValidImageError(FileNotFoundError):
    """Neither generation of the store holds a valid image."""


def encode_image(payload: dict, seq: int) -> bytes:
    """Frame ``payload`` as NVImage bytes with sequence number ``seq``."""
    if seq < 1:
        raise ValueError("sequence numbers start at 1")
    body = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )
    header = json.dumps(
        {
            "schema": IMAGE_SCHEMA,
            "seq": seq,
            "length": len(body),
            "crc32": zlib.crc32(body),
        },
        sort_keys=True,
        separators=(",", ":"),
    ).encode("utf-8")
    return MAGIC + _HEADER_LEN.pack(len(header)) + header + body


def decode_image(data: bytes) -> tuple[dict, int]:
    """Parse and validate NVImage bytes; returns ``(payload, seq)``.

    Raises :class:`ImageCorruptError` on any framing, schema, length,
    or CRC violation — the caller falls back to the other generation.
    """
    if len(data) < len(MAGIC) + _HEADER_LEN.size:
        raise ImageCorruptError("image shorter than its framing")
    if data[: len(MAGIC)] != MAGIC:
        raise ImageCorruptError("bad magic")
    offset = len(MAGIC)
    (header_len,) = _HEADER_LEN.unpack_from(data, offset)
    offset += _HEADER_LEN.size
    if offset + header_len > len(data):
        raise ImageCorruptError("truncated header")
    try:
        header = json.loads(data[offset : offset + header_len])
    except ValueError as exc:
        raise ImageCorruptError(f"unparseable header: {exc}") from None
    if not isinstance(header, dict) or header.get("schema") != IMAGE_SCHEMA:
        raise ImageCorruptError(
            f"schema is {header.get('schema') if isinstance(header, dict) else header!r}, "
            f"expected {IMAGE_SCHEMA}"
        )
    seq = header.get("seq")
    length = header.get("length")
    crc = header.get("crc32")
    if not isinstance(seq, int) or seq < 1:
        raise ImageCorruptError(f"bad sequence number {seq!r}")
    if not isinstance(length, int) or not isinstance(crc, int):
        raise ImageCorruptError("header is missing length/crc32")
    body = data[offset + header_len :]
    if len(body) != length:
        raise ImageCorruptError(
            f"body is {len(body)} bytes, header says {length} (torn write)"
        )
    if zlib.crc32(body) != crc:
        raise ImageCorruptError("body CRC mismatch (corrupt image)")
    try:
        payload = json.loads(body)
    except ValueError as exc:  # pragma: no cover - CRC already passed
        raise ImageCorruptError(f"unparseable body: {exc}") from None
    if not isinstance(payload, dict):
        raise ImageCorruptError("image payload must be a JSON object")
    return payload, seq


class NVImageStore:
    """Two-generation atomic image store in one directory.

    ``commit`` writes the next generation; ``load`` returns the newest
    valid one, falling back to the elder when the newer is torn or
    corrupt.  ``fallbacks`` counts how many times a load had to discard
    a corrupt generation (mirrored to the ``checkpoint.fallbacks``
    counter when telemetry is attached by the caller).
    """

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fallbacks = 0
        #: Test/crash-injection hook: called with the running byte count
        #: after each chunk of the temp-file write (crashsim uses it to
        #: SIGKILL mid-image-write).  None = disabled.
        self._write_hook: Optional[Callable[[int], None]] = None
        #: Bytes per write chunk when a write hook is active.
        self._chunk = 4096

    # ------------------------------------------------------------------

    def slot_path(self, slot: int) -> Path:
        return self.directory / GENERATIONS[slot % 2]

    def _scan(self) -> tuple[Optional[dict], int, int]:
        """Newest valid ``(payload, seq)`` plus corrupt-slot count."""
        best_payload: Optional[dict] = None
        best_seq = 0
        corrupt = 0
        for slot in range(2):
            try:
                data = self.slot_path(slot).read_bytes()
            except OSError:
                continue
            try:
                payload, seq = decode_image(data)
            except ImageCorruptError:
                corrupt += 1
                continue
            if seq > best_seq:
                best_payload, best_seq = payload, seq
        return best_payload, best_seq, corrupt

    @property
    def latest_seq(self) -> int:
        """Sequence number of the newest valid generation (0 if none)."""
        return self._scan()[1]

    def load(self) -> tuple[dict, int]:
        """Return ``(payload, seq)`` of the newest valid generation.

        A corrupt generation alongside a valid one counts as a
        *fallback* (the A/B scheme absorbing a torn commit); two
        corrupt/absent generations raise :class:`NoValidImageError`.
        """
        payload, seq, corrupt = self._scan()
        if payload is None:
            raise NoValidImageError(
                f"no valid NVImage generation under {self.directory}"
            )
        if corrupt:
            self.fallbacks += corrupt
        return payload, seq

    def commit(self, payload: dict) -> int:
        """Atomically publish ``payload`` as the next generation.

        Returns the new sequence number.  The write goes to the slot
        not holding the latest valid generation, through a temp file in
        the same directory — a crash at any byte leaves the surviving
        generations untouched.
        """
        seq = self.latest_seq + 1
        target = self.slot_path(seq)
        data = encode_image(payload, seq)
        temp = _temp_path(target)
        try:
            with open(temp, "wb") as handle:
                if self._write_hook is None:
                    handle.write(data)
                else:
                    written = 0
                    for start in range(0, len(data), self._chunk):
                        chunk = data[start : start + self._chunk]
                        handle.write(chunk)
                        handle.flush()
                        written += len(chunk)
                        self._write_hook(written)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temp, target)
        except BaseException:
            try:
                os.unlink(temp)
            except OSError:
                pass
            raise
        _fsync_directory(target.parent)
        self._sweep_temps()
        return seq

    def _sweep_temps(self) -> None:
        """Remove leftover temp files from writers that were SIGKILLed
        mid-commit (their ``finally`` never ran).  Safe after our own
        ``os.replace``: any temp still present is stale by construction
        (temp names are unique per write attempt)."""
        for path in self.directory.glob(".nvimage.*.tmp.*"):
            try:
                path.unlink()
            except OSError:
                pass

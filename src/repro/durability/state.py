"""Bit-exact capture and restore of simulator state.

Everything here round-trips **exactly** through JSON:

* bool arrays (MTJ matrices, activation latches, the transfer buffer,
  the sensor buffer) are bit-packed and base64-encoded;
* floats rely on Python's shortest-round-trip ``repr`` (the JSON
  encoder), so every energy/latency/voltage value restores to the
  identical IEEE-754 double;
* dual non-volatile registers serialise both copies, the parity bit,
  and the stage handshake.

Capture is only legal at an **instruction boundary** (no in-flight
word), which is exactly where the checkpoint hooks fire — so a
restored machine re-enters the run loop indistinguishable from one
that never stopped, and a resumed run's final report is byte-identical
to the uninterrupted run's.
"""

from __future__ import annotations

import base64
import dataclasses
from typing import Any

import numpy as np

from repro.core.accelerator import Mouse
from repro.core.controller import MemoryController, Phase
from repro.core.program import Program
from repro.core.registers import DualRegister
from repro.devices.parameters import CellKind, DeviceParameters
from repro.energy.metrics import Breakdown
from repro.harvest.capacitor import EnergyBuffer
from repro.harvest.intermittent import (
    HarvestingConfig,
    InstructionProfile,
    Segment,
)
from repro.harvest.source import ConstantPowerSource, SolarProfileSource
from repro.isa.instruction import decode_cached


class StateCaptureError(RuntimeError):
    """The object is not in a capturable state (e.g. mid-instruction)."""


# ----------------------------------------------------------------------
# Primitive codecs
# ----------------------------------------------------------------------


def encode_bool_array(array: np.ndarray) -> dict:
    array = np.asarray(array, dtype=bool)
    packed = np.packbits(array.reshape(-1))
    return {
        "shape": list(array.shape),
        "bits": base64.b64encode(packed.tobytes()).decode("ascii"),
    }


def decode_bool_array(obj: dict) -> np.ndarray:
    shape = tuple(int(s) for s in obj["shape"])
    count = int(np.prod(shape)) if shape else 1
    packed = np.frombuffer(base64.b64decode(obj["bits"]), dtype=np.uint8)
    return np.unpackbits(packed, count=count).astype(bool).reshape(shape)


def encode_params(params: DeviceParameters) -> dict:
    out = dataclasses.asdict(params)
    out["cell_kind"] = params.cell_kind.value
    return out


def decode_params(obj: dict) -> DeviceParameters:
    fields = dict(obj)
    fields["cell_kind"] = CellKind(fields["cell_kind"])
    return DeviceParameters(**fields)


def encode_register(register: DualRegister) -> dict:
    return {
        "name": register.name,
        "values": list(register._values),
        "parity": register.parity.value,
        "staged": register._staged,
    }


def decode_register(register: DualRegister, obj: dict) -> None:
    register._values = [
        None if v is None else int(v) for v in obj["values"]
    ]
    register.parity.set(bool(obj["parity"]))
    register._staged = bool(obj["staged"])


def encode_breakdown(breakdown: Breakdown) -> dict:
    return dataclasses.asdict(breakdown)


def decode_breakdown(obj: dict) -> Breakdown:
    return Breakdown(**obj)


def encode_buffer(buffer: EnergyBuffer) -> dict:
    out = {
        "capacitance": buffer.capacitance,
        "v_off": buffer.v_off,
        "v_on": buffer.v_on,
        "voltage": buffer.voltage,
    }
    # Non-ideality knobs travel only when set, so ideal-buffer payloads
    # are byte-identical to those of earlier image generations.
    if buffer.leakage_amps:
        out["leakage_amps"] = buffer.leakage_amps
    if buffer.esr_ohms:
        out["esr_ohms"] = buffer.esr_ohms
    return out


def decode_buffer(obj: dict) -> EnergyBuffer:
    return EnergyBuffer(**obj)


def encode_source(source) -> dict:
    if isinstance(source, ConstantPowerSource):
        return {"type": "constant", "watts": source.watts}
    if isinstance(source, SolarProfileSource):
        return {
            "type": "solar",
            "mean_watts": source.mean_watts,
            "depth": source.depth,
            "period": source.period,
        }
    from repro.env.trace import HarvestTrace, TraceSource

    if isinstance(source, TraceSource):
        return {"type": "trace", "trace": source.trace.to_json_obj()}
    raise StateCaptureError(
        f"power source {type(source).__name__} is not serialisable; "
        "use ConstantPowerSource, SolarProfileSource or TraceSource "
        "for resumable runs"
    )


def decode_source(obj: dict):
    kind = obj.get("type")
    if kind == "constant":
        return ConstantPowerSource(obj["watts"])
    if kind == "solar":
        return SolarProfileSource(
            obj["mean_watts"], depth=obj["depth"], period=obj["period"]
        )
    if kind == "trace":
        from repro.env.trace import HarvestTrace, TraceSource

        return TraceSource(HarvestTrace.from_json_obj(obj["trace"]))
    raise ValueError(f"unknown power-source type {kind!r}")


def encode_config(config: HarvestingConfig) -> dict:
    return {
        "source": encode_source(config.source),
        "buffer": encode_buffer(config.buffer),
    }


def decode_config(obj: dict) -> HarvestingConfig:
    return HarvestingConfig(
        source=decode_source(obj["source"]),
        buffer=decode_buffer(obj["buffer"]),
    )


def encode_profile(profile: InstructionProfile) -> dict:
    return {
        "name": profile.name,
        "active_columns": profile.active_columns,
        "segments": [dataclasses.asdict(s) for s in profile.segments],
    }


def decode_profile(obj: dict) -> InstructionProfile:
    return InstructionProfile(
        segments=[Segment(**s) for s in obj["segments"]],
        name=obj["name"],
        active_columns=obj["active_columns"],
    )


# ----------------------------------------------------------------------
# Machine capture/restore
# ----------------------------------------------------------------------


def capture_machine(mouse: Mouse) -> dict[str, Any]:
    """Snapshot a machine at an instruction boundary.

    Captures the architectural non-volatile state the paper enumerates
    (per-tile MTJ matrices, the dual PC + parity, the duplicated
    Activate-Columns and sensor-PC registers, the transfer buffer) plus
    the volatile-but-boundary-stable peripherals (column-activation
    latches) and the energy ledger.
    """
    controller = mouse.controller
    if not controller.halted and (
        controller._word is not None or controller._instr is not None
    ):
        # A halted machine legitimately retains its final HALT word;
        # restore_machine leaves the in-flight slots empty, which is
        # fine because a halted controller never steps again.
        raise StateCaptureError(
            "machine has an in-flight instruction; capture only at "
            "instruction boundaries"
        )
    bank = mouse.bank
    return {
        "params": encode_params(mouse.params),
        "geometry": {
            "n_data_tiles": len(bank.data_tiles),
            "n_instruction_tiles": bank.n_instruction_tiles,
            "rows": bank.rows,
            "cols": bank.cols,
        },
        "program": list(mouse.program.words()),
        "data_tiles": [
            {
                "state": encode_bool_array(tile.state),
                "active_columns": encode_bool_array(tile.active_columns),
            }
            for tile in bank.data_tiles
        ],
        "sensor": {
            "valid": bank.sensor.valid,
            "data": encode_bool_array(bank.sensor.data),
        },
        "registers": {
            "pc": encode_register(controller.pc),
            "act": encode_register(controller.activate_register),
            "sensor_pc": encode_register(controller.sensor_pc),
        },
        "controller": {
            "buffer": encode_bool_array(controller.buffer),
            "powered": controller.powered,
            "halted": controller.halted,
            "phase": controller.phase.value,
            "dead_replay": controller._dead_replay,
            "lost_work": controller._lost_work,
            "executed_uncommitted": controller._executed_uncommitted,
        },
        "ledger": encode_breakdown(mouse.ledger.breakdown),
    }


def restore_machine(payload: dict[str, Any]) -> Mouse:
    """Rebuild a machine from :func:`capture_machine` output, bit-exact."""
    geometry = payload["geometry"]
    mouse = Mouse(
        decode_params(payload["params"]),
        n_data_tiles=geometry["n_data_tiles"],
        n_instruction_tiles=geometry["n_instruction_tiles"],
        rows=geometry["rows"],
        cols=geometry["cols"],
    )
    words = [int(w) for w in payload["program"]]
    mouse.bank.load_program(words)
    mouse._program = Program([decode_cached(w) for w in words])

    for tile, saved in zip(mouse.bank.data_tiles, payload["data_tiles"]):
        tile.state[:] = decode_bool_array(saved["state"])
        tile.active_columns[:] = decode_bool_array(saved["active_columns"])
        tile._refresh_active_index()
    mouse.bank.sensor.data[:] = decode_bool_array(payload["sensor"]["data"])
    mouse.bank.sensor.valid = bool(payload["sensor"]["valid"])

    controller: MemoryController = mouse.controller
    registers = payload["registers"]
    decode_register(controller.pc, registers["pc"])
    decode_register(controller.activate_register, registers["act"])
    decode_register(controller.sensor_pc, registers["sensor_pc"])

    saved = payload["controller"]
    controller.buffer[:] = decode_bool_array(saved["buffer"])
    controller.powered = bool(saved["powered"])
    controller.halted = bool(saved["halted"])
    controller.phase = Phase(saved["phase"])
    controller._dead_replay = bool(saved["dead_replay"])
    controller._lost_work = bool(saved["lost_work"])
    controller._executed_uncommitted = bool(saved["executed_uncommitted"])

    mouse.ledger.breakdown = decode_breakdown(payload["ledger"])
    return mouse

"""Per-task result stores: resumable sweeps with byte-identical merges.

The repo's big experiments — the Fig. 9 latency sweep, the Table IV
accuracy table, fault campaigns — are ordered merges of independent
tasks.  :func:`run_resumable` persists each task's result the moment it
completes (atomically, via :mod:`repro.durability.atomic`), so a killed
run resumes by recomputing only the missing tasks.

Two properties make the merged output **byte-identical** whether the
run went straight through or was killed and resumed any number of
times:

* every result is read back through the same JSON round-trip (floats
  restore via shortest-round-trip ``repr``, so doubles are exact), and
* the merge is by task order, never completion order — same discipline
  as :func:`repro.perf.parallel.parallel_tasks`.

A :class:`TaskStore` is bound to a **fingerprint** of the experiment's
parameters; resuming against a store written by a different parameter
set fails loudly instead of silently merging stale results.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Callable, Optional, Sequence

from repro.durability.atomic import atomic_write_json

_FINGERPRINT = "fingerprint.json"


class TaskStoreMismatch(ValueError):
    """The store on disk was written by a different parameter set."""


def _task_filename(key: str) -> str:
    digest = hashlib.sha256(key.encode("utf-8")).hexdigest()[:24]
    return f"task-{digest}.json"


class TaskStore:
    """A directory of atomically-written per-task JSON results.

    Concurrent writers are safe: forked ``--jobs`` workers each publish
    their own results through unique temp names, and a worker killed
    mid-write leaves either nothing or the previous complete file.
    """

    def __init__(self, directory: str | Path, fingerprint: dict) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        canonical = json.loads(json.dumps(fingerprint, sort_keys=True))
        path = self.directory / _FINGERPRINT
        if path.exists():
            try:
                existing = json.loads(path.read_text())
            except ValueError:
                existing = None
            if existing != canonical:
                raise TaskStoreMismatch(
                    f"{self.directory} holds results for a different "
                    f"parameter set; point --checkpoint-dir elsewhere or "
                    f"delete the stale store\n  stored:    {existing}\n"
                    f"  requested: {canonical}"
                )
        else:
            atomic_write_json(path, canonical, sort_keys=True)
        self.fingerprint = canonical

    # ------------------------------------------------------------------

    def path_for(self, key: str) -> Path:
        return self.directory / _task_filename(key)

    def put(self, key: str, result: Any) -> None:
        """Atomically persist one task's result (JSON-serialisable)."""
        atomic_write_json(
            self.path_for(key), {"key": key, "result": result}, sort_keys=True
        )

    def get(self, key: str) -> Any:
        """Stored result for ``key``; raises ``KeyError`` when absent or
        unreadable (an unreadable entry is simply recomputed)."""
        try:
            obj = json.loads(self.path_for(key).read_text())
        except (OSError, ValueError):
            raise KeyError(key) from None
        if not isinstance(obj, dict) or obj.get("key") != key:
            raise KeyError(key)
        return obj["result"]

    def done(self, keys: Sequence[str]) -> set[str]:
        """Subset of ``keys`` with a stored result."""
        completed = set()
        for key in keys:
            try:
                self.get(key)
            except KeyError:
                continue
            completed.add(key)
        return completed


def run_resumable(
    keys: Sequence[str],
    thunks: Sequence[Callable[[], Any]],
    store: Optional[TaskStore],
    jobs: Optional[int] = None,
    encode: Callable[[Any], Any] = lambda r: r,
    decode: Callable[[Any], Any] = lambda r: r,
) -> list:
    """Run keyed thunks with per-task persistence; results in key order.

    ``encode`` maps a thunk's result to plain JSON data before storage;
    ``decode`` maps stored data back.  Every returned result — even on
    a straight-through run — passes through ``decode(encode(...))``, so
    resumed and uninterrupted runs are indistinguishable downstream.

    With ``store=None`` this degrades to a plain (non-persistent)
    parallel map.
    """
    from repro.perf.parallel import parallel_tasks

    keys = list(keys)
    thunks = list(thunks)
    if len(keys) != len(thunks):
        raise ValueError("one key per thunk")
    if len(set(keys)) != len(keys):
        raise ValueError("task keys must be unique")

    if store is None:
        return [
            decode(json.loads(json.dumps(encode(r), sort_keys=True)))
            for r in parallel_tasks(thunks, jobs=jobs)
        ]

    completed = store.done(keys)
    pending = [
        (key, thunk)
        for key, thunk in zip(keys, thunks)
        if key not in completed
    ]

    def _persisting(key: str, thunk: Callable[[], Any]) -> Callable[[], Any]:
        def run() -> None:
            # The worker (possibly a forked child) publishes its own
            # result; the parent re-reads everything from the store, so
            # nothing meaningful crosses the pipe.
            store.put(key, encode(thunk()))

        return run

    if pending:
        parallel_tasks(
            [_persisting(k, t) for k, t in pending], jobs=jobs
        )
    return [decode(store.get(key)) for key in keys]

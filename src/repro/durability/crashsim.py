"""Seeded process-kill crash injection with exact-resume verification.

The paper argues the architecture survives power loss at *any* microstep
with at most one repeated instruction.  This harness makes the same
adversarial argument about the host process: it runs a real intermittent
workload under a :class:`~repro.durability.checkpoint.Checkpointer`,
**SIGKILLs** the process at seeded instruction boundaries — and, for a
fraction of the kills, in the middle of an NVImage write — resumes from
the surviving image generation, repeats until the run completes, and
asserts the final energy breakdown and machine readout are
**byte-identical** to an uninterrupted run.

Mechanics:

* every killed attempt is a ``fork()`` child (it inherits the compiled
  workload, so 100+ kills cost about one extra full run of the
  workload); the parent verifies each child actually died by SIGKILL;
* mid-write kills route through ``NVImageStore._write_hook``, dying
  after a seeded number of bytes of the temp file — the A/B scheme must
  shrug this off because the live generations were never touched;
* between attempts the parent optionally **fuzzes** the newest
  committed generation (truncate the tail or flip one byte), modelling
  torn/bit-rotted storage: the CRC must reject it and the elder
  generation must restore (counted as ``fallbacks``).

Everything is driven by one ``default_rng(seed)`` stream, so a campaign
is exactly reproducible.
"""

from __future__ import annotations

import dataclasses
import os
import signal
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional

import numpy as np

from repro.durability.checkpoint import (
    Checkpointer,
    CheckpointPolicy,
    capture_intermittent,
    resume_intermittent,
)
from repro.durability.image import NoValidImageError, NVImageStore
from repro.harvest.capacitor import EnergyBuffer
from repro.harvest.intermittent import HarvestingConfig, IntermittentRun
from repro.harvest.source import ConstantPowerSource


@dataclass(frozen=True)
class CrashPlan:
    """One seeded kill campaign over one workload.

    ``kills`` SIGKILL points are drawn (without replacement) from the
    run's instruction boundaries; ``mid_write_fraction`` of them strike
    mid-image-write instead, and after ``fuzz_fraction`` of the kills
    the parent corrupts the newest on-disk generation before resuming.
    ``period`` is the checkpoint interval in committed instructions —
    deliberately small so kills land between, at, and inside image
    commits.  The harvesting constants are scaled so the tiny campaign
    workloads still see hundreds of outages (a ~paper-sized buffer
    would make outages vanishingly rare at this instruction count).

    ``trace_family`` switches the harvester from the constant source to
    a synthetic :mod:`repro.env` trace (``constant`` / ``solar`` /
    ``rf_burst``) seeded by ``trace_seed`` and scaled around
    ``source_watts``, so kills and resumes are exercised under a
    *fluctuating* power process; ``kinetic`` is rejected because its
    dead tail fail-stops and a kill campaign needs a completable
    reference run.
    """

    workload: str = "svm"
    kills: int = 25
    seed: int = 0
    mid_write_fraction: float = 0.25
    fuzz_fraction: float = 0.25
    period: int = 16
    source_watts: float = 5e-9
    capacitance: float = 2e-10
    trace_family: str = ""
    trace_seed: int = 0

    def _source(self):
        if not self.trace_family:
            return ConstantPowerSource(self.source_watts)
        from repro.env.trace import (
            TraceSource,
            constant,
            rf_burst,
            solar_diurnal,
        )

        w = self.source_watts
        if self.trace_family == "constant":
            trace = constant(w)
        elif self.trace_family == "solar":
            # Positive night floor: every charge window terminates, so
            # the campaign's reference run always completes.
            trace = solar_diurnal(
                seed=self.trace_seed,
                peak_watts=2.0 * w,
                floor_watts=0.25 * w,
                day_length=0.05,
            )
        elif self.trace_family == "rf_burst":
            trace = rf_burst(
                seed=self.trace_seed,
                burst_watts=4.0 * w,
                idle_watts=0.25 * w,
            )
        else:
            raise ValueError(
                f"crash campaigns cannot run under trace family "
                f"{self.trace_family!r} (need a source that never dies: "
                "constant, solar or rf_burst)"
            )
        return TraceSource(trace)

    def config(self) -> HarvestingConfig:
        return HarvestingConfig(
            source=self._source(),
            buffer=EnergyBuffer(
                capacitance=self.capacitance, v_off=0.30, v_on=0.34
            ),
        )


@dataclass(frozen=True)
class CrashReport:
    """Outcome of one campaign; ``identical`` is the whole point."""

    workload: str
    seed: int
    instructions: int
    kills: int
    mid_write_kills: int
    fuzzed: int
    fallbacks: int
    attempts: int
    identical: bool
    reference: dict
    final: dict

    def to_json_obj(self) -> dict:
        return dataclasses.asdict(self)


class _Killed(RuntimeError):
    """Internal: a child failed to die when it should have."""


def _workload(name: str):
    from repro.faults.campaign import WORKLOADS

    try:
        return WORKLOADS[name]()
    except KeyError:
        raise ValueError(
            f"unknown crash workload {name!r}; one of: "
            + ", ".join(sorted(WORKLOADS))
        ) from None


def _breakdown_obj(run: IntermittentRun, workload) -> dict:
    out = dataclasses.asdict(run.mouse.ledger.breakdown)
    out["readout"] = [int(v) for v in workload.readout(run.mouse)]
    return out


def _fresh_or_resumed(
    plan: CrashPlan, workload, store: NVImageStore, checkpointer: Checkpointer
) -> IntermittentRun:
    try:
        return resume_intermittent(store, checkpointer=checkpointer)
    except NoValidImageError:
        # Nothing durable yet (killed before the first image commit, or
        # every generation was fuzzed away): start from scratch —
        # exactly what the uninterrupted run did.
        return IntermittentRun(
            workload.build(), plan.config(), checkpointer=checkpointer
        )


def _child_attempt(
    plan: CrashPlan,
    workload,
    store: NVImageStore,
    kill_at: Optional[int],
    mid_write_bytes: Optional[int],
    out_path: Path,
) -> None:
    """Runs inside the fork: resume, optionally self-SIGKILL, else
    finish and atomically publish the final breakdown."""
    checkpointer = Checkpointer(store, CheckpointPolicy(period=plan.period))
    run = _fresh_or_resumed(plan, workload, store, checkpointer)

    if kill_at is not None:
        if mid_write_bytes is not None:
            # Arm the store: die after `mid_write_bytes` of whichever
            # image write follows the kill boundary.
            def write_hook(written: int) -> None:
                if written >= mid_write_bytes:
                    os.kill(os.getpid(), signal.SIGKILL)

            store._chunk = 64  # fine-grained so the threshold lands inside
        target = kill_at

        original_on_commit = checkpointer.on_commit

        def killing_on_commit(r: IntermittentRun) -> None:
            original_on_commit(r)
            if r.executed >= target:
                if mid_write_bytes is not None:
                    # Force an image commit and die inside it.
                    store._write_hook = write_hook
                    checkpointer._commit(
                        capture_intermittent(r, phase="powered"), r.time
                    )
                    # The image was smaller than the byte threshold:
                    # the commit survived; die at the boundary instead.
                os.kill(os.getpid(), signal.SIGKILL)

        checkpointer.on_commit = killing_on_commit

    breakdown = run.run()
    if kill_at is not None:
        # Reaching here means the kill point was never hit — the resume
        # chain somehow skipped instructions.  Report it loudly.
        os.write(2, b"crashsim child outlived its kill point\n")
        os._exit(3)
    from repro.durability.atomic import atomic_write_json

    obj = dataclasses.asdict(breakdown)
    obj["readout"] = [int(v) for v in workload.readout(run.mouse)]
    atomic_write_json(out_path, obj, sort_keys=True)
    os._exit(0)


def _spawn(attempt: Callable[[], None]) -> int:
    """Fork, run ``attempt`` in the child, return the wait status."""
    sys.stdout.flush()
    sys.stderr.flush()
    pid = os.fork()
    if pid == 0:
        try:
            attempt()
        except BaseException as exc:  # noqa: BLE001 - child must not escape
            os.write(2, f"crashsim child crashed: {exc!r}\n".encode())
            os._exit(2)
        os._exit(0)  # pragma: no cover - attempt() always exits itself
    _, status = os.waitpid(pid, 0)
    return status


def _fuzz_generation(store: NVImageStore, rng: np.random.Generator) -> bool:
    """Corrupt the newest on-disk generation (truncate or flip a byte).

    Returns True if something was corrupted.  The next load must fall
    back to the elder generation via CRC rejection.
    """
    candidates = [
        path
        for slot in range(2)
        if (path := store.slot_path(slot)).exists()
    ]
    if not candidates:
        return False
    newest = max(candidates, key=lambda p: p.stat().st_mtime_ns)
    data = bytearray(newest.read_bytes())
    if len(data) < 2:
        return False
    if rng.random() < 0.5:
        # Torn tail: drop a random suffix.
        cut = int(rng.integers(1, len(data)))
        newest.write_bytes(bytes(data[:cut]))
    else:
        # Bit rot: flip one byte anywhere in the frame.
        index = int(rng.integers(0, len(data)))
        data[index] ^= 0xFF
        newest.write_bytes(bytes(data))
    return True


def run_crash_campaign(
    plan: CrashPlan, image_dir: str | Path
) -> CrashReport:
    """Execute one seeded kill-resume campaign; see the module docstring.

    ``image_dir`` must be empty (or nonexistent): it receives the A/B
    generations and the final breakdown JSON.
    """
    rng = np.random.default_rng(plan.seed)
    workload = _workload(plan.workload)
    image_dir = Path(image_dir)
    image_dir.mkdir(parents=True, exist_ok=True)
    if any(image_dir.iterdir()):
        raise ValueError(f"crash campaign image dir {image_dir} is not empty")

    # Uninterrupted reference, in-process.
    ref_run = IntermittentRun(workload.build(), plan.config())
    ref_run.run()
    reference = _breakdown_obj(ref_run, workload)
    total = int(reference["instructions"])
    if plan.kills >= total:
        raise ValueError(
            f"cannot place {plan.kills} kills in {total} instructions"
        )

    # Seeded kill schedule: strictly increasing instruction boundaries,
    # a seeded subset striking mid-image-write.
    kill_points = sorted(
        int(k) + 1 for k in rng.choice(total - 1, size=plan.kills, replace=False)
    )
    mid_write = rng.random(plan.kills) < plan.mid_write_fraction
    fuzz_after = rng.random(plan.kills) < plan.fuzz_fraction

    store = NVImageStore(image_dir)
    out_path = image_dir / "final.json"
    mid_write_kills = 0
    fuzzed = 0
    fallbacks = 0
    attempts = 0

    for index, kill_at in enumerate(kill_points):
        strike_mid_write = bool(mid_write[index])
        # Image size is ~tens of KB; die a seeded way into the frame.
        mid_bytes = int(rng.integers(1, 4096)) if strike_mid_write else None
        attempts += 1
        status = _spawn(
            lambda: _child_attempt(
                plan, workload, NVImageStore(image_dir),
                kill_at, mid_bytes, out_path,
            )
        )
        if not (os.WIFSIGNALED(status) and os.WTERMSIG(status) == signal.SIGKILL):
            raise _Killed(
                f"child for kill point {kill_at} did not die by SIGKILL "
                f"(status {status:#x})"
            )
        if strike_mid_write:
            mid_write_kills += 1
        if fuzz_after[index] and _fuzz_generation(store, rng):
            fuzzed += 1
            # The acceptance bar: a corrupted generation must be
            # *detected* (CRC) and the surviving one must restore.  A
            # parent-side probe load proves it before the next child
            # depends on it.
            probe = NVImageStore(image_dir)
            try:
                probe.load()
            except NoValidImageError:
                # Only one generation existed and it is now corrupt:
                # detection worked and the next attempt starts fresh,
                # which is the correct degraded behaviour.
                pass
            fallbacks += max(probe.fallbacks, 1)

    # Final attempt: no kill — must run to completion and publish.
    attempts += 1
    status = _spawn(
        lambda: _child_attempt(
            plan, workload, NVImageStore(image_dir), None, None, out_path
        )
    )
    if not (os.WIFEXITED(status) and os.WEXITSTATUS(status) == 0):
        raise _Killed(
            f"final resume did not complete cleanly (status {status:#x})"
        )

    import json

    final = json.loads(out_path.read_text())
    return CrashReport(
        workload=plan.workload,
        seed=plan.seed,
        instructions=total,
        kills=plan.kills,
        mid_write_kills=mid_write_kills,
        fuzzed=fuzzed,
        fallbacks=fallbacks,
        attempts=attempts,
        identical=(final == reference),
        reference=reference,
        final=final,
    )

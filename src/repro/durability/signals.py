"""Graceful SIGINT/SIGTERM for long-running CLI commands.

Inside a :func:`graceful_signals` block, an interrupt or a terminate
becomes an :class:`Interrupted` exception raised at the next bytecode
boundary — so ``finally`` blocks run, telemetry sinks flush, and the
run manifest is finalised (with ``interrupted: true``) before the
process exits with the conventional ``128 + signum`` status (130 for
SIGINT, 143 for SIGTERM).

A second signal while the first is being handled falls through to the
previous (default) handler, so a stuck cleanup can still be killed with
a repeated Ctrl-C.
"""

from __future__ import annotations

import contextlib
import signal
from typing import Iterator

_DEFAULT_SIGNALS = (signal.SIGINT, signal.SIGTERM)


class Interrupted(BaseException):
    """Raised by the :func:`graceful_signals` handler.

    Derives from ``BaseException`` (like ``KeyboardInterrupt``) so
    ordinary ``except Exception`` recovery paths don't swallow it.
    """

    def __init__(self, signum: int) -> None:
        self.signum = signum
        try:
            name = signal.Signals(signum).name
        except ValueError:  # pragma: no cover - unknown signal number
            name = str(signum)
        super().__init__(f"received {name}")

    @property
    def exit_code(self) -> int:
        """Shell convention: ``128 + signum`` (SIGINT -> 130)."""
        return 128 + self.signum


@contextlib.contextmanager
def graceful_signals(
    signums: tuple[signal.Signals, ...] = _DEFAULT_SIGNALS,
) -> Iterator[None]:
    """Turn the given signals into :class:`Interrupted` inside the block.

    Handlers are restored on exit; re-entrant use (e.g. a command that
    calls another guarded helper) nests harmlessly.  Outside the main
    thread — where Python forbids ``signal.signal`` — the block is a
    no-op rather than an error.
    """
    previous = {}
    triggered = False

    def _handler(signum, frame):
        nonlocal triggered
        if triggered:
            # Second signal: restore the old disposition and re-raise
            # via it, so a wedged cleanup is still killable.
            for s, h in previous.items():
                signal.signal(s, h)
            raise KeyboardInterrupt
        triggered = True
        raise Interrupted(signum)

    try:
        for s in signums:
            previous[s] = signal.signal(s, _handler)
    except ValueError:  # pragma: no cover - not in the main thread
        yield
        return
    try:
        yield
    finally:
        for s, h in previous.items():
            with contextlib.suppress(ValueError):
                signal.signal(s, h)

"""Atomic file writes: write-temp + fsync + ``os.replace``.

Every durable artifact the repo produces — run manifests, fault
reports, ``BENCH_*.json``, export CSVs, NVImage generations — goes
through these helpers, so a crash (or SIGKILL) at any instant leaves
either the previous complete file or the new complete file on disk,
never a torn one.

The temp file lives in the *target's* directory (``os.replace`` must
not cross filesystems) and carries the writer's PID plus a process-
local counter, so concurrent writers — forked ``--jobs`` workers
persisting per-task results into one store — never collide.  On any
failure (including ``SystemExit`` from a SIGTERM handler) the temp
file is unlinked, so killed workers clean up after themselves.
"""

from __future__ import annotations

import itertools
import json
import os
from pathlib import Path
from typing import Any

_temp_counter = itertools.count()


def _temp_path(target: Path) -> Path:
    return target.parent / f".{target.name}.tmp.{os.getpid()}.{next(_temp_counter)}"


def _fsync_directory(directory: Path) -> None:
    """Best-effort directory fsync so the rename itself is durable."""
    try:
        fd = os.open(directory, os.O_RDONLY | getattr(os, "O_DIRECTORY", 0))
    except OSError:  # pragma: no cover - exotic filesystems
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fsync on dirs unsupported
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(
    path: str | Path, data: bytes, fsync: bool = True
) -> Path:
    """Atomically publish ``data`` at ``path``; returns the path.

    The write sequence is write-temp -> flush -> fsync -> ``os.replace``
    -> directory fsync.  Readers never observe a partial file: they see
    the old contents until the rename, the new contents after.
    """
    target = Path(path)
    temp = _temp_path(target)
    try:
        with open(temp, "wb") as handle:
            handle.write(data)
            if fsync:
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(temp, target)
    except BaseException:
        # Covers SystemExit raised by the graceful SIGTERM handler in
        # --jobs workers: the half-written temp never outlives us.
        try:
            os.unlink(temp)
        except OSError:
            pass
        raise
    if fsync:
        _fsync_directory(target.parent)
    return target


def atomic_write_text(
    path: str | Path, text: str, fsync: bool = True
) -> Path:
    """Atomically publish ``text`` (UTF-8) at ``path``."""
    return atomic_write_bytes(path, text.encode("utf-8"), fsync=fsync)


def atomic_write_json(
    path: str | Path, obj: Any, fsync: bool = True, **dumps_kwargs
) -> Path:
    """Atomically publish ``obj`` as JSON (trailing newline included)."""
    dumps_kwargs.setdefault("indent", 2)
    return atomic_write_bytes(
        path,
        (json.dumps(obj, **dumps_kwargs) + "\n").encode("utf-8"),
        fsync=fsync,
    )

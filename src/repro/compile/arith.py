"""Word-level arithmetic on MOUSE.

All routines emit straight-line gate sequences through a
:class:`~repro.compile.builder.ProgramBuilder` and follow the paper's
decomposition: n-bit addition = a half-add plus (n-1) full-adds
(Section VI), multiplication = shift-and-add over AND partial products,
popcount = a pairwise adder tree.  Signed values use two's complement;
signed multiplication is sign-magnitude (conditional negate around an
unsigned core).

``instruction_count(op, ...)`` returns the *exact* instruction count of
each routine by building it once against a scratch builder and
memoising — the workload cost models use these, so the aggregate
simulation can never drift from what the compiler actually emits.
"""

from __future__ import annotations

import functools
import math
from functools import lru_cache

from repro.compile.builder import Bit, ProgramBuilder, Word
from repro.compile.macros import (
    and_bit,
    full_add,
    full_add_min3,
    half_add,
    mux_bit,
    not_bit,
    or_bit,
    xnor_bit,
    xor_bit,
)


def _scoped(fn):
    """Open an attribution scope named after the routine for its whole
    emission (see :meth:`ProgramBuilder.scope`)."""
    name = fn.__name__

    @functools.wraps(fn)
    def wrapper(b: ProgramBuilder, *args, **kwargs):
        with b.scope(name):
            return fn(b, *args, **kwargs)

    return wrapper


def _pad(b: ProgramBuilder, word: Word, n_bits: int) -> Word:
    """Zero-extend a word to ``n_bits`` (constant-0 rows)."""
    if len(word) >= n_bits:
        return word
    parity = word[0].parity if len(word) else 0
    extra = tuple(b.constant(0, parity) for _ in range(n_bits - len(word)))
    return Word(word.bits + extra)


@_scoped
def ripple_add(
    b: ProgramBuilder,
    x: Word,
    y: Word,
    carry_in: Bit | None = None,
    adder=full_add,
) -> Word:
    """x + y (+ carry_in), producing max(len)+1 bits (no overflow).

    ``adder`` selects the full-adder implementation: the paper's 9-NAND
    construction (default) or :func:`~repro.compile.macros.full_add_min3`.
    """
    n = max(len(x), len(y))
    nx, ny = len(x), len(y)
    x = _pad(b, x, n)
    y = _pad(b, y, n)
    bits: list[Bit] = []
    carry = carry_in
    for i in range(n):
        if carry is None:
            s, carry = half_add(b, x[i], y[i])
        else:
            s, new_carry = adder(b, x[i], y[i], carry)
            if carry is not carry_in:
                # Intermediate carries are ours; the caller's carry_in
                # is not.
                b.release(carry)
            carry = new_carry
        bits.append(s)
    bits.append(carry)  # type: ignore[arg-type]
    # Zero-extension constants are internal scratch; recycle their rows
    # (safe in a straight-line program: later reuse cannot affect the
    # already-emitted gates that read them).
    b.release(*x.bits[nx:], *y.bits[ny:])
    return Word(tuple(bits))


@_scoped
def ripple_add_mod(b: ProgramBuilder, x: Word, y: Word, n_bits: int) -> Word:
    """(x + y) mod 2**n_bits — fixed-width accumulate."""
    full = ripple_add(b, _pad(b, x, n_bits), _pad(b, y, n_bits))
    keep = Word(full.bits[:n_bits])
    b.release(*full.bits[n_bits:])
    return keep


@_scoped
def invert(b: ProgramBuilder, x: Word) -> Word:
    """Bitwise NOT of every bit."""
    return Word(tuple(not_bit(b, bit) for bit in x))


@_scoped
def negate(b: ProgramBuilder, x: Word) -> Word:
    """Two's-complement negation at the same width: ~x + 1."""
    inv = invert(b, x)
    one = b.constant(1, inv[0].parity)
    out = ripple_add_mod(b, inv, Word((one,) + tuple()), len(x))
    b.release(inv, one)
    return out


@_scoped
def ripple_sub(b: ProgramBuilder, x: Word, y: Word, n_bits: int | None = None) -> Word:
    """(x - y) mod 2**n at width n = n_bits or max(len x, len y).

    Two's complement: x + ~y + 1; the +1 enters as the carry-in of the
    first full adder.
    """
    n = n_bits or max(len(x), len(y))
    nx_orig, ny_orig = len(x), len(y)
    x = _pad(b, x, n)
    y = _pad(b, y, n)
    inv = invert(b, y)
    one = b.constant(1, x[0].parity)
    total = ripple_add(b, x, inv, carry_in=one)
    keep = Word(total.bits[:n])
    b.release(
        inv, one, *total.bits[n:], *x.bits[nx_orig:], *y.bits[ny_orig:]
    )
    return keep


@_scoped
def sign_extend(b: ProgramBuilder, x: Word, n_bits: int) -> Word:
    """Two's-complement extension: replicate the sign bit upward.

    Each extension bit is a BUF copy (chained, so one gate per bit);
    their bitline parity alternates, which is fine — adders harmonise
    operands themselves.
    """
    if n_bits <= len(x):
        return Word(x.bits[:n_bits])
    ext: list[Bit] = []
    source = x[-1]
    for _ in range(n_bits - len(x)):
        source = b.copy(source)
        ext.append(source)
    return Word(x.bits + tuple(ext))


@_scoped
def conditional_negate(b: ProgramBuilder, x: Word, sign: Bit) -> Word:
    """sign ? -x : x  (XOR every bit with sign, add sign as carry-in)."""
    flipped = Word(tuple(xor_bit(b, bit, sign) for bit in x))
    zero = Word(tuple(b.constant(0, flipped[0].parity) for _ in x))
    sign_m = b.copy(sign, parity=flipped[0].parity)
    total = ripple_add(b, flipped, zero, carry_in=sign_m)
    keep = Word(total.bits[: len(x)])
    b.release(flipped, zero, sign_m, *total.bits[len(x) :])
    return keep


@_scoped
def multiply(b: ProgramBuilder, x: Word, y: Word) -> Word:
    """Unsigned shift-and-add multiply: len(x)+len(y) result bits."""
    n, m = len(x), len(y)
    acc: Word | None = None
    for j in range(m):
        partial = Word(tuple(and_bit(b, x[i], y[j]) for i in range(n)))
        if acc is None:
            acc = partial
        else:
            # Add the partial into acc[j:]; lower bits are settled.
            upper = Word(acc.bits[j:])
            summed = ripple_add(b, upper, partial)
            b.release(*upper.bits, *partial.bits)
            acc = Word(acc.bits[:j] + summed.bits)
    assert acc is not None
    # Result width n+m (the last ripple_add appended its carry).
    return Word(acc.bits[: n + m])


@_scoped
def square(b: ProgramBuilder, x: Word) -> Word:
    """x*x — needs an explicit operand duplicate (a row cannot feed a
    gate twice), which the builder's harmonise provides per-gate; a
    single up-front copy of the word is cheaper."""
    mirror = Word(tuple(b.copy(bit, parity=bit.parity) for bit in x))
    out = multiply(b, x, mirror)
    b.release(*mirror.bits)
    return out


@_scoped
def multiply_signed(b: ProgramBuilder, x: Word, y: Word) -> Word:
    """Signed (two's complement) multiply via sign-magnitude."""
    sx, sy = x[-1], y[-1]
    ax = conditional_negate(b, x, sx)
    ay = conditional_negate(b, y, sy)
    mag = multiply(b, ax, ay)
    sign = xor_bit(b, sx, sy)
    out = conditional_negate(b, mag, sign)
    b.release(*ax.bits, *ay.bits, *mag.bits, sign)
    return out


@_scoped
def popcount(b: ProgramBuilder, bits: list[Bit]) -> Word:
    """Number of set bits, as a word — the BNN accumulation primitive.

    Pairwise adder tree: words of growing width are summed until one
    remains; 0 bits in -> empty result is an error.
    """
    if not bits:
        raise ValueError("popcount needs at least one bit")
    level: list[Word] = [Word((bit,)) for bit in bits]
    owned = [False] * len(level)  # level-0 bits belong to the caller
    while len(level) > 1:
        nxt: list[Word] = []
        nxt_owned: list[bool] = []
        for i in range(0, len(level) - 1, 2):
            nxt.append(ripple_add(b, level[i], level[i + 1]))
            nxt_owned.append(True)
            if owned[i]:
                b.release(*level[i].bits)
            if owned[i + 1]:
                b.release(*level[i + 1].bits)
        if len(level) % 2:
            nxt.append(level[-1])
            nxt_owned.append(owned[-1])
        level = nxt
        owned = nxt_owned
    return level[0]


@_scoped
def xnor_word(b: ProgramBuilder, x: Word, y: Word) -> list[Bit]:
    """Element-wise XNOR of two equal-length bit vectors."""
    if len(x) != len(y):
        raise ValueError("xnor_word needs equal lengths")
    return [xnor_bit(b, x[i], y[i]) for i in range(len(x))]


@_scoped
def greater_equal(b: ProgramBuilder, x: Word, y: Word) -> Bit:
    """Unsigned x >= y: the no-borrow (carry-out) of x + ~y + 1."""
    n = max(len(x), len(y))
    nx_orig, ny_orig = len(x), len(y)
    x = _pad(b, x, n)
    y = _pad(b, y, n)
    inv = invert(b, y)
    one = b.constant(1, x[0].parity)
    total = ripple_add(b, x, inv, carry_in=one)
    carry = total.bits[-1]
    b.release(
        inv, one, *total.bits[:-1], *x.bits[nx_orig:], *y.bits[ny_orig:]
    )
    return carry


@_scoped
def select_word(b: ProgramBuilder, sel: Bit, when0: Word, when1: Word) -> Word:
    """Word-level 2:1 mux."""
    n = max(len(when0), len(when1))
    n0, n1 = len(when0), len(when1)
    when0 = _pad(b, when0, n)
    when1 = _pad(b, when1, n)
    out = Word(tuple(mux_bit(b, sel, when0[i], when1[i]) for i in range(n)))
    b.release(*when0.bits[n0:], *when1.bits[n1:])
    return out


@_scoped
def word_max(b: ProgramBuilder, words: list[Word]) -> Word:
    """Unsigned maximum of several words (compare + mux reduction)."""
    if not words:
        raise ValueError("word_max needs at least one word")
    best = words[0]
    owned = False  # words[0] belongs to the caller; later bests are ours
    for challenger in words[1:]:
        ge = greater_equal(b, challenger, best)
        winner = select_word(b, ge, best, challenger)
        if owned:
            b.release(*best.bits)
        b.release(ge)
        best, owned = winner, True
    return best


def constant_word(b: ProgramBuilder, value: int, n_bits: int, parity: int = 0) -> Word:
    """A word of preset constants (one PRESET instruction per bit)."""
    if value < 0 or value >= 1 << n_bits:
        raise ValueError(f"{value} does not fit in {n_bits} bits")
    return Word(
        tuple(b.constant((value >> i) & 1, parity) for i in range(n_bits))
    )


@_scoped
def word_argmax(b: ProgramBuilder, words: list[Word]) -> tuple[Word, Word]:
    """(index, value) of the unsigned maximum — the one-vs-rest
    classification step ("we take the highest-score output of the 10
    classifiers to be the final classification", Section III).

    Ties resolve to the *later* index (>= comparison), which is
    deterministic and matches ``np.argmax`` only when values are
    distinct; classifiers' integer scores collide with negligible
    probability.
    """
    if not words:
        raise ValueError("word_argmax needs at least one word")
    index_bits = max(1, math.ceil(math.log2(max(2, len(words)))))
    best = words[0]
    owned = False
    best_index = constant_word(b, 0, index_bits)
    for i, challenger in enumerate(words[1:], start=1):
        ge = greater_equal(b, challenger, best)
        winner = select_word(b, ge, best, challenger)
        if owned:
            b.release(*best.bits)
        best, owned = winner, True
        candidate_index = constant_word(b, i, index_bits)
        new_index = select_word(b, ge, best_index, candidate_index)
        b.release(*best_index.bits, *candidate_index.bits, ge)
        best_index = new_index
    return best_index, best


# ----------------------------------------------------------------------
# Exact instruction counts (memoised measurement of the real emitter)
# ----------------------------------------------------------------------


def _scratch_builder(rows: int = 8192) -> tuple[ProgramBuilder, int]:
    b = ProgramBuilder(rows=rows, cols=8)
    b.activate((0,))
    return b, b.instruction_count


@lru_cache(maxsize=None)
def instruction_count(op: str, *args: int) -> int:
    """Instructions emitted by an arithmetic routine (excl. ACTIVATE).

    ``op`` is one of ``full_add``, ``half_add``, ``xor``, ``xnor``,
    ``and``, ``add(n)``, ``sub(n)``, ``mul(n, m)``, ``mul_signed(n, m)``,
    ``square(n)``, ``popcount(n)``, ``ge(n)``, ``word_max(k, n)``.
    """
    return sum(count for _, count in instruction_histogram(op, *args))


@lru_cache(maxsize=None)
def instruction_histogram(op: str, *args: int) -> "tuple[tuple[str, int], ...]":
    """Instruction mix of a routine: ((kind, count), ...) sorted pairs.

    Kinds are gate names (``NAND``, ``BUF``, ...) and ``PRESET``.  The
    workload cost models price each kind separately, so aggregate
    energy is computed from exactly the instructions the compiler
    emits.
    """
    b, base = _scratch_builder()

    def wordp(n: int, parity: int = 0) -> Word:
        return Word(tuple(Bit(b.alloc.alloc(parity)) for _ in range(n)))

    if op == "full_add":
        full_add(b, Bit(b.alloc.alloc(0)), Bit(b.alloc.alloc(0)), Bit(b.alloc.alloc(0)))
    elif op == "full_add_min3":
        full_add_min3(
            b, Bit(b.alloc.alloc(0)), Bit(b.alloc.alloc(0)), Bit(b.alloc.alloc(0))
        )
    elif op == "add_min3":
        (n,) = args
        ripple_add(b, wordp(n), wordp(n), adder=full_add_min3)
    elif op == "half_add":
        half_add(b, Bit(b.alloc.alloc(0)), Bit(b.alloc.alloc(0)))
    elif op == "xor":
        xor_bit(b, Bit(b.alloc.alloc(0)), Bit(b.alloc.alloc(0)))
    elif op == "xnor":
        xnor_bit(b, Bit(b.alloc.alloc(0)), Bit(b.alloc.alloc(0)))
    elif op == "and":
        and_bit(b, Bit(b.alloc.alloc(0)), Bit(b.alloc.alloc(0)))
    elif op == "add":
        (n,) = args
        ripple_add(b, wordp(n), wordp(n))
    elif op == "sub":
        (n,) = args
        ripple_sub(b, wordp(n), wordp(n))
    elif op == "mul":
        n, m = args
        multiply(b, wordp(n), wordp(m))
    elif op == "mul_signed":
        n, m = args
        multiply_signed(b, wordp(n), wordp(m))
    elif op == "square":
        (n,) = args
        square(b, wordp(n))
    elif op == "popcount":
        (n,) = args
        popcount(b, [Bit(b.alloc.alloc(0)) for _ in range(n)])
    elif op == "ge":
        (n,) = args
        greater_equal(b, wordp(n), wordp(n))
    elif op == "word_max":
        k, n = args
        word_max(b, [wordp(n) for _ in range(k)])
    else:
        raise ValueError(f"unknown op {op!r}")

    from collections import Counter

    from repro.isa.instruction import LogicInstruction, MemoryInstruction

    mix: Counter = Counter()
    for instr in list(b.program)[base:]:
        if isinstance(instr, LogicInstruction):
            mix[instr.gate.upper()] += 1
        elif isinstance(instr, MemoryInstruction):
            if instr.op.upper().startswith("PRESET"):
                mix["PRESET"] += 1
            else:  # pragma: no cover - arithmetic emits no READ/WRITE
                mix[instr.op.upper()] += 1
    return tuple(sorted(mix.items()))

"""Instruction emission: the bridge between macros and the ISA.

`ProgramBuilder` produces a straight-line MOUSE program.  It owns a
:class:`~repro.compile.allocator.RowAllocator`, pairs every logic gate
with the preset write its output row needs, tracks the active-column
set so redundant Activate Columns instructions are not emitted, and
handles the bitline-parity discipline (inserting BUF copies when a
gate's operands sit on different parities).

Values are :class:`Bit` (one row) and :class:`Word` (little-endian
tuple of Bits).  The same emitted program computes in *every* active
column simultaneously — columns are the SIMD dimension.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

from repro.compile.allocator import RowAllocator
from repro.core.program import Program
from repro.isa.encoding import MAX_ACTIVATE_COLUMNS
from repro.isa.instruction import (
    ActivateColumnsInstruction,
    LogicInstruction,
    MemoryInstruction,
)
from repro.logic.library import gate_by_name


@dataclass(frozen=True)
class Bit:
    """A single-bit value living at a row (within the active columns)."""

    row: int

    @property
    def parity(self) -> int:
        return self.row & 1


@dataclass(frozen=True)
class Word:
    """A little-endian multi-bit value, one bit per row."""

    bits: tuple[Bit, ...]

    def __len__(self) -> int:
        return len(self.bits)

    def __getitem__(self, index: int) -> Bit:
        return self.bits[index]

    def __iter__(self):
        return iter(self.bits)

    @property
    def rows(self) -> tuple[int, ...]:
        return tuple(b.row for b in self.bits)


class ProgramBuilder:
    """Builds one tile's instruction stream (greedy minimal-column
    scheduling: the column set is chosen once by the caller and the
    whole computation runs within it)."""

    def __init__(
        self,
        tile: int = 0,
        rows: int = 1024,
        cols: int = 1024,
        reserved_rows: int = 0,
        name: str = "program",
    ) -> None:
        self.tile = tile
        self.rows = rows
        self.cols = cols
        self.program = Program(name=name)
        self.alloc = RowAllocator(rows, reserved=reserved_rows)
        self._active: Optional[tuple] = None
        self._verify_pcs: set[int] = set()

    # ------------------------------------------------------------------
    # Scopes (energy-attribution frames; see repro.obs.prof)
    # ------------------------------------------------------------------

    @contextlib.contextmanager
    def scope(self, name: str) -> Iterator[None]:
        """Label instructions emitted inside the block with ``name``.

        Scopes nest (classifier > layer > macro) and are recorded in
        the program's :class:`~repro.core.program.ScopeTable`; they
        change nothing about the emitted instruction stream, only how
        the profiler attributes its energy and time.
        """
        self.program.enter_scope(name)
        try:
            yield
        finally:
            self.program.exit_scope()

    # ------------------------------------------------------------------
    # Columns
    # ------------------------------------------------------------------

    def activate(self, columns: Sequence[int]) -> None:
        """Activate an explicit column set (chunked into instructions of
        <=5 addresses as the ISA requires).

        Note: multi-instruction activations replace the latch, so only
        the *final* chunk would survive a literal replay; the builder
        therefore requires explicit sets to fit one instruction and
        callers with more columns must use :meth:`activate_range`.
        """
        cols = tuple(sorted(set(columns)))
        if not cols:
            raise ValueError("need at least one column")
        if len(cols) > MAX_ACTIVATE_COLUMNS:
            raise ValueError(
                f"{len(cols)} columns exceed one Activate Columns "
                "instruction; use activate_range"
            )
        key = ("set", cols)
        if self._active == key:
            return
        self.program.append(
            ActivateColumnsInstruction(tile=self.tile, columns=cols)
        )
        self._active = key

    def activate_range(self, first: int, last: int) -> None:
        """Bulk-activate an inclusive column range."""
        key = ("range", first, last)
        if self._active == key:
            return
        self.program.append(
            ActivateColumnsInstruction(
                tile=self.tile, columns=(first, last), bulk=True
            )
        )
        self._active = key

    # ------------------------------------------------------------------
    # Gates
    # ------------------------------------------------------------------

    def emit_gate(self, gate: str, inputs: Sequence[Bit], output: Bit) -> None:
        """Preset the output row, then execute the gate."""
        spec = gate_by_name(gate)
        if len(inputs) != spec.n_inputs:
            raise ValueError(f"{gate} takes {spec.n_inputs} inputs")
        preset_op = "PRESET1" if spec.preset else "PRESET0"
        self.program.append(
            MemoryInstruction(op=preset_op, tile=self.tile, row=output.row)
        )
        self.program.append(
            LogicInstruction(
                gate=spec.name,
                tile=self.tile,
                input_rows=tuple(b.row for b in inputs),
                output_row=output.row,
            )
        )

    def gate(self, gate: str, *inputs: Bit) -> Bit:
        """Run a gate on (parity-harmonised) inputs into a fresh row.

        Parity copies harmonise creates here are single-use scratch and
        are recycled immediately after the gate is emitted.
        """
        ins = self.harmonise(list(inputs))
        out = Bit(self.alloc.alloc_opposite([b.row for b in ins]))
        self.emit_gate(gate, ins, out)
        original_rows = {b.row for b in inputs}
        for bit in ins:
            if bit.row not in original_rows:
                self.release(bit)
        return out

    def mark_verify(self, pc: Optional[int] = None) -> int:
        """Mark a logic instruction for selective verify-and-retry.

        ``pc`` defaults to the most recently emitted instruction (the
        natural call site: right after :meth:`gate`).  Marked pcs are
        folded into the program's ``harden_meta`` at :meth:`finish`,
        where the fault layer's :class:`~repro.faults.injectors.
        ControllerFaultHook` picks them up whenever the plan's
        ``verify_marked`` switch is on — the re-read costs one row read
        per marked gate instead of one per gate.
        """
        if pc is None:
            pc = len(self.program) - 1
        if not 0 <= pc < len(self.program):
            raise ValueError(f"pc {pc} is outside the emitted program")
        if not isinstance(self.program[pc], LogicInstruction):
            raise ValueError(
                f"only logic instructions can be verify-marked; pc {pc} "
                f"holds {self.program[pc]!r}"
            )
        self._verify_pcs.add(pc)
        return pc

    # ------------------------------------------------------------------
    # Parity management
    # ------------------------------------------------------------------

    def copy(self, source: Bit, parity: Optional[int] = None) -> Bit:
        """Copy a bit through a BUF gate (output parity flips; copying
        to the same parity takes two BUFs through a temporary)."""
        if parity is None or parity != source.parity:
            out = Bit(self.alloc.alloc(1 - source.parity))
            self.emit_gate("BUF", [source], out)
            return out
        middle = self.copy(source)
        out = self.copy(middle)
        self.release(middle)
        return out

    def harmonise(self, bits: list[Bit]) -> list[Bit]:
        """Return versions of ``bits`` that share one parity, copying
        the minority side.  Copies are fresh scratch rows; the originals
        are left untouched (and not freed)."""
        if len({b.row for b in bits}) != len(bits):
            # A gate cannot read one row twice; duplicate via a copy.
            seen: set[int] = set()
            deduped: list[Bit] = []
            for b in bits:
                if b.row in seen:
                    b = self.copy(b, parity=b.parity)  # duplicate the row
                seen.add(b.row)
                deduped.append(b)
            bits = deduped
        parities = {b.parity for b in bits}
        if len(parities) == 1:
            return bits
        even = [b for b in bits if b.parity == 0]
        odd = [b for b in bits if b.parity == 1]
        majority, minority = (even, odd) if len(even) >= len(odd) else (odd, even)
        target = majority[0].parity
        moved = {b.row: self.copy(b, parity=target) for b in minority}
        return [moved.get(b.row, b) for b in bits]

    # ------------------------------------------------------------------
    # Constants and words
    # ------------------------------------------------------------------

    def constant(self, value: int, parity: int = 0) -> Bit:
        """A bit holding a constant in every active column (one preset)."""
        out = Bit(self.alloc.alloc(parity))
        op = "PRESET1" if value else "PRESET0"
        self.program.append(MemoryInstruction(op=op, tile=self.tile, row=out.row))
        return out

    def word_at(self, rows: Sequence[int]) -> Word:
        """Wrap existing (caller-placed) rows as a Word, LSB first."""
        return Word(tuple(Bit(r) for r in rows))

    def alloc_word(self, n_bits: int, parity: int = 0) -> Word:
        """Allocate a fresh word with all bits on one parity."""
        return Word(tuple(Bit(self.alloc.alloc(parity)) for _ in range(n_bits)))

    def release(self, *values: Bit | Word) -> None:
        """Return scratch rows to the allocator."""
        for value in values:
            if isinstance(value, Word):
                self.alloc.free_many(value.rows)
            else:
                self.alloc.free(value.row)

    # ------------------------------------------------------------------

    def finish(self, strict: bool = False) -> Program:
        """Seal and return the program.

        With ``strict=True`` the sealed program is run through the full
        :mod:`repro.lint` pass pipeline against this builder's bank
        shape — plus the :mod:`repro.verify` per-instruction
        re-execution-safety prover (``REEX*``, period 1) — and a
        :class:`~repro.lint.linter.LintError` (carrying the structured
        report) is raised if any error-severity diagnostic fires.  The
        opt-in compile-time gate for code that bypasses the builder's
        own disciplines via raw ``program.append``.
        """
        self.program.ensure_halt()
        if self._verify_pcs:
            meta = self.program.harden_meta or {"schema": "repro.harden/v1"}
            marked = set(meta.get("verify_pcs", ())) | self._verify_pcs
            meta["verify_pcs"] = sorted(marked)
            self.program.harden_meta = meta
        if strict:
            from repro.lint import LintConfig, LintError, lint_program
            from repro.verify import ReExecutionPass, verify_program

            config = LintConfig(
                n_data_tiles=self.tile + 1, rows=self.rows, cols=self.cols
            )
            report = lint_program(self.program, config)
            if not report.ok:
                raise LintError(report)
            reexec = verify_program(
                self.program, config, [ReExecutionPass(period=1)]
            )
            if not reexec.ok:
                raise LintError(reexec)
        return self.program

    @property
    def instruction_count(self) -> int:
        return len(self.program)

"""Application mapping: from arithmetic to MOUSE instruction sequences.

The compilation model follows the paper's Sections VI-VII: values are
bit-vectors laid out *vertically* in a column (one bit per row); a gate
sequence computes within the column, and the Activate Columns mask
replays that same sequence across many columns at once (SIMD).  The
scheduler is the paper's greedy minimal-column policy: use as few
columns as possible, at some cost in latency.

Layers:

* :mod:`repro.compile.allocator` — parity-aware row allocation.
* :mod:`repro.compile.builder` — instruction emission (preset + gate
  pairing, activate-columns management).
* :mod:`repro.compile.macros` — single-bit macros (copy, xor, half/full
  add — the full adder is the paper's 9-NAND construction).
* :mod:`repro.compile.arith` — word-level arithmetic (ripple add/sub,
  shift-add multiply, square, popcount, comparisons) with closed-form
  gate-count formulas the cost model shares.
* :mod:`repro.compile.dot` — fixed-point and binary dot products, the
  inner loops of SVM and BNN inference.
"""

from repro.compile.allocator import RowAllocator
from repro.compile.builder import ProgramBuilder, Bit, Word
from repro.compile.classifier import (
    CompiledBnnLayer,
    CompiledBnnOutput,
    CompiledMulticlassSvm,
    CompiledSvm,
    compile_bnn_layer,
    compile_bnn_output,
    compile_multiclass_svm,
    compile_svm_decision,
)
from repro.compile import macros, arith, dot

__all__ = [
    "RowAllocator",
    "ProgramBuilder",
    "Bit",
    "Word",
    "macros",
    "arith",
    "dot",
    "CompiledSvm",
    "CompiledMulticlassSvm",
    "CompiledBnnLayer",
    "CompiledBnnOutput",
    "compile_svm_decision",
    "compile_multiclass_svm",
    "compile_bnn_layer",
    "compile_bnn_output",
]

"""Whole-classifier compilation: trained models to single MOUSE programs.

Two compilers, both producing straight-line programs for the functional
machine plus the metadata needed to load operands and read results:

* :func:`compile_svm_decision` — a complete binary SVM decision
  (Section III pipeline): per support vector, dot(x, sv) + offset,
  square, multiply by |dual coefficient|, conditionally negate by the
  coefficient's sign, and accumulate; the classification is the sign
  bit of the final score.  Support vectors and coefficients are *baked
  into the program's data layout* (written at load time); the input
  vector is the only runtime operand.

* :func:`compile_bnn_layer` — one binary layer with neurons mapped to
  columns: the weight bits and the per-neuron integer threshold live in
  each neuron's column, the activation vector is broadcast to all
  columns, and a single shared instruction stream (XNOR, popcount,
  compare) fires every neuron simultaneously — the column-parallelism
  the paper's Section VI mapping describes, end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.compile import arith
from repro.compile.builder import Bit, ProgramBuilder, Word
from repro.core.accelerator import Mouse
from repro.core.program import Program
from repro.devices.parameters import DeviceParameters, MODERN_STT


def _place_word(mouse: Mouse, tile: int, word: Word, column: int, value: int) -> None:
    masked = value & ((1 << len(word)) - 1)
    for index, bit in enumerate(word):
        mouse.tile(tile).set_bit(bit.row, column, (masked >> index) & 1)


def _read_word(mouse: Mouse, tile: int, word: Word, column: int, signed: bool) -> int:
    value = 0
    for index, bit in enumerate(word):
        value |= mouse.tile(tile).get_bit(bit.row, column) << index
    if signed and value >= 1 << (len(word) - 1):
        value -= 1 << len(word)
    return value


# ----------------------------------------------------------------------
# SVM
# ----------------------------------------------------------------------


def _emit_score(
    builder: ProgramBuilder,
    input_words: list[Word],
    sv_words: list[list[Word]],
    coef_words: list[Word],
    coef_signs: list[Bit],
    offset_word: Word,
    kernel_bits: int,
    score_bits: int,
) -> Word:
    """One classifier's decision value: sum_k coef_k * (x . sv_k + c)^2.

    Shared by the binary and multi-class compilers.  Two's-complement
    accumulation at ``score_bits`` so the sign (and ordering) is exact.
    """
    acc: Word | None = None
    for k in range(len(sv_words)):
        with builder.scope(f"sv{k}"):
            with builder.scope("dot"):
                dot: Word | None = None
                for d, x_word in enumerate(input_words):
                    term = arith.multiply(builder, x_word, sv_words[k][d])
                    if dot is None:
                        dot = term
                    else:
                        merged = arith.ripple_add(builder, dot, term)
                        builder.release(*dot.bits, *term.bits)
                        dot = merged
                assert dot is not None
            with builder.scope("kernel"):
                shifted = arith.ripple_add(builder, dot, offset_word)
                builder.release(*dot.bits)
                shifted = Word(shifted.bits[:kernel_bits])
                kernel = arith.square(builder, shifted)
                builder.release(*shifted.bits)
            with builder.scope("coef"):
                product = arith.multiply(builder, kernel, coef_words[k])
                builder.release(*kernel.bits)
                signed = arith.conditional_negate(builder, product, coef_signs[k])
                builder.release(*product.bits)
            with builder.scope("accumulate"):
                wide = arith.sign_extend(builder, signed, score_bits)
                if acc is None:
                    acc = wide
                else:
                    total = arith.ripple_add_mod(builder, acc, wide, score_bits)
                    builder.release(*acc.bits, *wide.bits)
                    acc = total
    assert acc is not None
    return acc


@dataclass
class CompiledSvm:
    """A compiled binary SVM decision.

    The same instruction stream classifies one input per *active
    column* simultaneously (the paper's column parallelism): the model
    data is replicated into every column at load time, each column gets
    its own input vector, and one program execution produces a batch of
    decisions.
    """

    program: Program
    input_words: list[Word]  # one per dimension (runtime operand)
    sv_words: list[list[Word]]  # [sv][dimension] (baked data)
    coef_words: list[Word]  # |coefficient| magnitudes
    coef_signs: list[Bit]
    offset_word: Word
    score: Word  # two's-complement final score
    input_bits: int
    rows: int
    n_columns: int = 1

    def machine(
        self,
        sv_int: np.ndarray,
        coef_int: np.ndarray,
        offset: int,
        tech: DeviceParameters = MODERN_STT,
    ) -> Mouse:
        """Instantiate a machine with the model data written in (to
        every column — the model is shared, inputs differ)."""
        mouse = Mouse(tech, rows=self.rows, cols=self.n_columns)
        for column in range(self.n_columns):
            for k, sv in enumerate(sv_int):
                for d, value in enumerate(sv):
                    _place_word(mouse, 0, self.sv_words[k][d], column, int(value))
            for k, coef in enumerate(coef_int):
                _place_word(mouse, 0, self.coef_words[k], column, abs(int(coef)))
                mouse.tile(0).set_bit(
                    self.coef_signs[k].row, column, int(coef < 0)
                )
            _place_word(mouse, 0, self.offset_word, column, int(offset))
        mouse.load(self.program)
        return mouse

    def set_input(
        self, mouse: Mouse, x_int: Sequence[int], column: int = 0
    ) -> None:
        for d, value in enumerate(x_int):
            _place_word(mouse, 0, self.input_words[d], column, int(value))

    def set_batch(self, mouse: Mouse, batch: np.ndarray) -> None:
        """One input vector per column."""
        batch = np.asarray(batch)
        if batch.shape[0] > self.n_columns:
            raise ValueError("batch larger than the compiled column count")
        for column, x in enumerate(batch):
            self.set_input(mouse, x, column)

    def read_score(self, mouse: Mouse, column: int = 0) -> int:
        return _read_word(mouse, 0, self.score, column, signed=True)

    def classify(self, mouse: Mouse, column: int = 0) -> int:
        """1 if the decision value is >= 0 (the paper's sign decision)."""
        return int(self.read_score(mouse, column) >= 0)

    def classify_batch(self, mouse: Mouse, n: int | None = None) -> np.ndarray:
        n = self.n_columns if n is None else n
        return np.array([self.classify(mouse, c) for c in range(n)])

    @staticmethod
    def reference_score(
        x_int: Sequence[int], sv_int: np.ndarray, coef_int: np.ndarray, offset: int
    ) -> int:
        """The integer pipeline in plain Python (for verification)."""
        total = 0
        for sv, coef in zip(sv_int, coef_int):
            kernel = (int(np.dot(x_int, sv)) + offset) ** 2
            total += int(coef) * kernel
        return total


def compile_svm_decision(
    n_support: int,
    dimensions: int,
    input_bits: int = 4,
    sv_bits: int = 4,
    coef_bits: int = 4,
    offset_bits: int = 4,
    rows: int = 1024,
    n_columns: int = 1,
) -> CompiledSvm:
    """Emit the full binary-SVM decision pipeline.

    Accumulation is two's-complement at a width covering the worst-case
    score magnitude, so the final sign bit is exact.  With
    ``n_columns > 1`` the single instruction stream classifies one
    input per column simultaneously.
    """
    if n_support < 1 or dimensions < 1:
        raise ValueError("need at least one support vector and dimension")
    if n_columns < 1:
        raise ValueError("need at least one column")
    builder = ProgramBuilder(
        tile=0, rows=rows, cols=n_columns, reserved_rows=0, name="svm"
    )
    builder.activate_range(0, n_columns - 1)

    # Reserve explicit operand rows up front (parity 0), so nothing the
    # compiler allocates can clobber pre-loaded data.
    def fresh_word(bits: int) -> Word:
        return Word(tuple(Bit(builder.alloc.alloc(0)) for _ in range(bits)))

    input_words = [fresh_word(input_bits) for _ in range(dimensions)]
    sv_words = [
        [fresh_word(sv_bits) for _ in range(dimensions)] for _ in range(n_support)
    ]
    coef_words = [fresh_word(coef_bits) for _ in range(n_support)]
    coef_signs = [Bit(builder.alloc.alloc(0)) for _ in range(n_support)]
    offset_word = fresh_word(offset_bits)

    kernel_bits = (
        input_bits
        + sv_bits
        + max(1, int(np.ceil(np.log2(max(2, dimensions)))))
        + 1  # + offset headroom
    )
    squared_bits = 2 * kernel_bits
    product_bits = squared_bits + coef_bits
    score_bits = product_bits + max(1, int(np.ceil(np.log2(max(2, n_support))))) + 1

    acc = _emit_score(
        builder,
        input_words,
        sv_words,
        coef_words,
        coef_signs,
        offset_word,
        kernel_bits,
        score_bits,
    )

    return CompiledSvm(
        program=builder.finish(),
        input_words=input_words,
        sv_words=sv_words,
        coef_words=coef_words,
        coef_signs=coef_signs,
        offset_word=offset_word,
        score=acc,
        input_bits=input_bits,
        rows=rows,
        n_columns=n_columns,
    )


# ----------------------------------------------------------------------
# Multi-class SVM (one-vs-rest + in-array argmax)
# ----------------------------------------------------------------------


@dataclass
class CompiledMulticlassSvm:
    """One-vs-rest classification ending in an in-array argmax.

    Implements the paper's Section III multi-class extension literally:
    one score pipeline per class over the shared input, the classifier
    index with the highest score is the prediction — computed by the
    compare/mux argmax reduction, so the *class index* is read out of
    the array, not derived host-side.
    """

    program: Program
    input_words: list[Word]
    class_models: list[dict]  # per class: sv/coef/sign/offset words
    index_word: Word  # the argmax result (class index)
    scores: list[Word]  # per-class signed scores (for inspection)
    input_bits: int
    rows: int

    @property
    def n_classes(self) -> int:
        return len(self.class_models)

    def machine(
        self,
        sv_int: Sequence[np.ndarray],  # per class: (k, d)
        coef_int: Sequence[np.ndarray],  # per class: (k,)
        offsets: Sequence[int],
        tech: DeviceParameters = MODERN_STT,
    ) -> Mouse:
        # Multi-class programs are long; provision enough instruction
        # tiles (each 1024-row tile holds 16 K instruction words).
        per_tile = self.rows * (1024 // 64)
        n_instruction_tiles = -(-len(self.program) // per_tile)
        mouse = Mouse(
            tech,
            rows=self.rows,
            cols=1,
            n_instruction_tiles=n_instruction_tiles,
        )
        for cls, model in enumerate(self.class_models):
            for k, sv in enumerate(sv_int[cls]):
                for d, value in enumerate(sv):
                    _place_word(mouse, 0, model["sv"][k][d], 0, int(value))
            for k, coef in enumerate(coef_int[cls]):
                _place_word(mouse, 0, model["coef"][k], 0, abs(int(coef)))
                mouse.tile(0).set_bit(model["sign"][k].row, 0, int(coef < 0))
            _place_word(mouse, 0, model["offset"], 0, int(offsets[cls]))
        mouse.load(self.program)
        return mouse

    def set_input(self, mouse: Mouse, x_int: Sequence[int]) -> None:
        for d, value in enumerate(x_int):
            _place_word(mouse, 0, self.input_words[d], 0, int(value))

    def predict(self, mouse: Mouse) -> int:
        return _read_word(mouse, 0, self.index_word, 0, signed=False)

    def read_scores(self, mouse: Mouse) -> list[int]:
        return [_read_word(mouse, 0, s, 0, signed=True) for s in self.scores]

    @staticmethod
    def reference_prediction(
        x_int: Sequence[int],
        sv_int: Sequence[np.ndarray],
        coef_int: Sequence[np.ndarray],
        offsets: Sequence[int],
    ) -> int:
        scores = [
            CompiledSvm.reference_score(x_int, sv_int[c], coef_int[c], offsets[c])
            for c in range(len(sv_int))
        ]
        # Ties resolve to the later index, matching the circuit.
        best = 0
        for c in range(1, len(scores)):
            if scores[c] >= scores[best]:
                best = c
        return best


def compile_multiclass_svm(
    n_classes: int,
    n_support_per_class: int,
    dimensions: int,
    input_bits: int = 3,
    sv_bits: int = 3,
    coef_bits: int = 3,
    offset_bits: int = 3,
    rows: int = 1024,
) -> CompiledMulticlassSvm:
    """Emit the full one-vs-rest pipeline, argmax included."""
    if n_classes < 2:
        raise ValueError("need at least two classes")
    if n_support_per_class < 1 or dimensions < 1:
        raise ValueError("need at least one support vector and dimension")
    builder = ProgramBuilder(
        tile=0, rows=rows, cols=1, reserved_rows=0, name="svm-ovr"
    )
    builder.activate((0,))

    def fresh_word(bits: int) -> Word:
        return Word(tuple(Bit(builder.alloc.alloc(0)) for _ in range(bits)))

    input_words = [fresh_word(input_bits) for _ in range(dimensions)]
    class_models = []
    for _ in range(n_classes):
        class_models.append(
            {
                "sv": [
                    [fresh_word(sv_bits) for _ in range(dimensions)]
                    for _ in range(n_support_per_class)
                ],
                "coef": [fresh_word(coef_bits) for _ in range(n_support_per_class)],
                "sign": [
                    Bit(builder.alloc.alloc(0)) for _ in range(n_support_per_class)
                ],
                "offset": fresh_word(offset_bits),
            }
        )

    kernel_bits = (
        input_bits
        + sv_bits
        + max(1, int(np.ceil(np.log2(max(2, dimensions)))))
        + 1
    )
    score_bits = (
        2 * kernel_bits
        + coef_bits
        + max(1, int(np.ceil(np.log2(max(2, n_support_per_class)))))
        + 1
    )

    scores = []
    for cls, model in enumerate(class_models):
        with builder.scope(f"class{cls}"):
            scores.append(
                _emit_score(
                    builder,
                    input_words,
                    model["sv"],
                    model["coef"],
                    model["sign"],
                    model["offset"],
                    kernel_bits,
                    score_bits,
                )
            )

    with builder.scope("argmax"):
        # Signed -> order-preserving unsigned: flip each score's sign bit.
        biased = []
        for score in scores:
            msb = builder.gate("NOT", score[-1])
            biased.append(Word(score.bits[:-1] + (msb,)))
        index_word, best = arith.word_argmax(builder, biased)
        builder.release(*best.bits)

    return CompiledMulticlassSvm(
        program=builder.finish(),
        input_words=input_words,
        class_models=class_models,
        index_word=index_word,
        scores=scores,
        input_bits=input_bits,
        rows=rows,
    )


# ----------------------------------------------------------------------
# BNN layer
# ----------------------------------------------------------------------


@dataclass
class CompiledBnnLayer:
    """One binary layer: neuron j in column j, shared instruction stream."""

    program: Program
    activation_word: Word  # broadcast input bits (runtime operand)
    weight_word: Word  # per-column weight bits (baked data)
    threshold_word: Word  # per-column integer thresholds (baked data)
    fire: Bit  # per-column output bit
    n_neurons: int
    fan_in: int
    rows: int

    def machine(
        self,
        weights01: np.ndarray,
        thresholds: np.ndarray,
        tech: DeviceParameters = MODERN_STT,
    ) -> Mouse:
        if weights01.shape != (self.fan_in, self.n_neurons):
            raise ValueError("weights shape mismatch")
        mouse = Mouse(tech, rows=self.rows, cols=self.n_neurons)
        for neuron in range(self.n_neurons):
            for i, bit in enumerate(self.weight_word):
                mouse.tile(0).set_bit(bit.row, neuron, int(weights01[i, neuron]))
            t = int(np.clip(thresholds[neuron], 0, 2 ** len(self.threshold_word) - 1))
            for i, bit in enumerate(self.threshold_word):
                mouse.tile(0).set_bit(bit.row, neuron, (t >> i) & 1)
        mouse.load(self.program)
        return mouse

    def set_input(self, mouse: Mouse, bits: Sequence[int]) -> None:
        """Broadcast the activation vector into every neuron's column."""
        for neuron in range(self.n_neurons):
            for i, bit in enumerate(self.activation_word):
                mouse.tile(0).set_bit(bit.row, neuron, int(bits[i]))

    def read_fires(self, mouse: Mouse) -> np.ndarray:
        return np.array(
            [mouse.tile(0).get_bit(self.fire.row, n) for n in range(self.n_neurons)]
        )


@dataclass
class CompiledBnnOutput:
    """The BNN output layer: per-class popcount scores + in-array argmax.

    With +/-1 weights the class score is ``2*popcount(xnor) - n + b``;
    for fixed fan-in the ordering equals that of ``popcount + b'`` with
    ``b' = (b + n) / 2`` shifted to be non-negative, so the circuit
    ranks ``popcount(xnor(a, w_c)) + bias_c`` with an unsigned argmax.
    Classes are evaluated serially in one column (the activation vector
    and every class's weights share the column), ending with the class
    index in the array.
    """

    program: Program
    activation_word: Word
    weight_words: list[Word]  # per class
    bias_words: list[Word]  # per class, non-negative integers
    index_word: Word
    fan_in: int
    n_classes: int
    rows: int

    def machine(
        self,
        weights01: np.ndarray,  # (fan_in, n_classes)
        biases: np.ndarray,  # (n_classes,) non-negative ints
        tech: DeviceParameters = MODERN_STT,
    ) -> Mouse:
        if weights01.shape != (self.fan_in, self.n_classes):
            raise ValueError("weights shape mismatch")
        if np.any(np.asarray(biases) < 0):
            raise ValueError("biases must be shifted non-negative")
        mouse = Mouse(tech, rows=self.rows, cols=1)
        for cls in range(self.n_classes):
            for i, bit in enumerate(self.weight_words[cls]):
                mouse.tile(0).set_bit(bit.row, 0, int(weights01[i, cls]))
            _place_word(mouse, 0, self.bias_words[cls], 0, int(biases[cls]))
        mouse.load(self.program)
        return mouse

    def set_input(self, mouse: Mouse, bits: Sequence[int]) -> None:
        for i, bit in enumerate(self.activation_word):
            mouse.tile(0).set_bit(bit.row, 0, int(bits[i]))

    def predict(self, mouse: Mouse) -> int:
        return _read_word(mouse, 0, self.index_word, 0, signed=False)

    @staticmethod
    def reference_prediction(
        bits: Sequence[int], weights01: np.ndarray, biases: np.ndarray
    ) -> int:
        x = np.asarray(bits, dtype=np.int64)
        w = weights01.astype(np.int64)
        matches = x @ w + (1 - x) @ (1 - w)
        scores = matches + np.asarray(biases, dtype=np.int64)
        best = 0
        for cls in range(1, len(scores)):
            if scores[cls] >= scores[best]:  # ties to the later index
                best = cls
        return int(best)


def compile_bnn_output(
    fan_in: int, n_classes: int, bias_bits: int = 4, rows: int = 1024
) -> CompiledBnnOutput:
    """Emit the output layer: per-class scores and the final argmax."""
    if fan_in < 1 or n_classes < 2:
        raise ValueError("need at least one input and two classes")
    builder = ProgramBuilder(
        tile=0, rows=rows, cols=1, reserved_rows=0, name="bnn-output"
    )
    builder.activate((0,))

    def fresh_word(bits: int) -> Word:
        return Word(tuple(Bit(builder.alloc.alloc(0)) for _ in range(bits)))

    activation = fresh_word(fan_in)
    weight_words = [fresh_word(fan_in) for _ in range(n_classes)]
    bias_words = [fresh_word(bias_bits) for _ in range(n_classes)]

    scores = []
    for cls in range(n_classes):
        with builder.scope(f"class{cls}"):
            matches = arith.xnor_word(builder, activation, weight_words[cls])
            count = arith.popcount(builder, matches)
            builder.release(*matches)
            total = arith.ripple_add(builder, count, bias_words[cls])
            builder.release(*count.bits)
            scores.append(total)
    with builder.scope("argmax"):
        index_word, best = arith.word_argmax(builder, scores)
        builder.release(*best.bits)

    return CompiledBnnOutput(
        program=builder.finish(),
        activation_word=activation,
        weight_words=weight_words,
        bias_words=bias_words,
        index_word=index_word,
        fan_in=fan_in,
        n_classes=n_classes,
        rows=rows,
    )


def compile_bnn_layer(
    fan_in: int, n_neurons: int, rows: int = 2048
) -> CompiledBnnLayer:
    """Emit one XNOR-popcount-threshold layer over ``n_neurons`` columns."""
    if fan_in < 1 or n_neurons < 1:
        raise ValueError("need at least one input and neuron")
    builder = ProgramBuilder(
        tile=0, rows=rows, cols=n_neurons, reserved_rows=0, name="bnn-layer"
    )
    builder.activate_range(0, n_neurons - 1)

    def fresh_word(bits: int) -> Word:
        return Word(tuple(Bit(builder.alloc.alloc(0)) for _ in range(bits)))

    activation = fresh_word(fan_in)
    weights = fresh_word(fan_in)
    count_bits = max(1, int(np.ceil(np.log2(fan_in + 1))))
    thresholds = fresh_word(count_bits)

    with builder.scope("binary-dot"):
        matches = arith.xnor_word(builder, activation, weights)
        count = arith.popcount(builder, matches)
        builder.release(*matches)
    count = Word(count.bits[:count_bits]) if len(count) > count_bits else count
    with builder.scope("threshold"):
        fire = arith.greater_equal(builder, count, thresholds)

    return CompiledBnnLayer(
        program=builder.finish(),
        activation_word=activation,
        weight_word=weights,
        threshold_word=thresholds,
        fire=fire,
        n_neurons=n_neurons,
        fan_in=fan_in,
        rows=rows,
    )

"""Parity-aware row allocation.

Logic operations require all input rows on one bitline parity and the
output row on the other (:mod:`repro.array.lines`).  The allocator
hands out scratch rows by parity and recycles freed ones, implementing
the paper's layout discipline: operands low, workspace rows interleaved
"picked based on availability" (Section VII).
"""

from __future__ import annotations


class RowAllocator:
    """Allocates rows of a tile, tracked separately per parity."""

    def __init__(self, rows: int, reserved: int = 0) -> None:
        """``reserved`` rows at the bottom are never handed out (they
        hold program inputs/outputs placed by the caller)."""
        if rows < 2:
            raise ValueError("need at least two rows")
        if reserved >= rows:
            raise ValueError("cannot reserve every row")
        self.rows = rows
        self._free: dict[int, list[int]] = {0: [], 1: []}
        # Prefer low row numbers: pop from the end of a reversed list.
        for row in range(rows - 1, reserved - 1, -1):
            self._free[row & 1].append(row)
        self._allocated: set[int] = set()
        self.high_water = 0

    def alloc(self, parity: int) -> int:
        """Allocate one row of the given parity (0 even, 1 odd)."""
        if parity not in (0, 1):
            raise ValueError("parity must be 0 or 1")
        stack = self._free[parity]
        if not stack:
            raise MemoryError(f"out of parity-{parity} rows")
        row = stack.pop()
        self._allocated.add(row)
        self.high_water = max(self.high_water, len(self._allocated))
        return row

    def alloc_opposite(self, rows) -> int:
        """Allocate a row of the parity opposite to existing ``rows``
        (which must all share one parity)."""
        parities = {r & 1 for r in rows}
        if len(parities) != 1:
            raise ValueError(f"rows {list(rows)} do not share a parity")
        (p,) = parities
        return self.alloc(1 - p)

    def free(self, row: int) -> None:
        if row not in self._allocated:
            raise ValueError(f"row {row} is not allocated")
        self._allocated.discard(row)
        self._free[row & 1].append(row)

    def free_many(self, rows) -> None:
        for row in rows:
            self.free(row)

    @property
    def in_use(self) -> int:
        return len(self._allocated)

    def available(self, parity: int) -> int:
        return len(self._free[parity])

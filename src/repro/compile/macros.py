"""Single-bit gate macros.

Everything here emits *physical* gate sequences — including the BUF
copies the bitline-parity rule forces when a value produced on one
parity feeds a gate together with a value on the other.  The paper's
full adder is "9 NAND gates ... using spare MTJs to hold 7 temporary
bits" (Section II-B); the physical sequence below is exactly those nine
NANDs plus the parity copies their placement requires.

Every macro frees its own scratch rows before returning, so long
ripple chains run in O(word size) rows, not O(gates).
"""

from __future__ import annotations

from repro.compile.builder import Bit, ProgramBuilder


def not_bit(b: ProgramBuilder, a: Bit) -> Bit:
    """Logical NOT (output lands on the opposite parity)."""
    return b.gate("NOT", a)


def and_bit(b: ProgramBuilder, x: Bit, y: Bit) -> Bit:
    return b.gate("AND", x, y)


def or_bit(b: ProgramBuilder, x: Bit, y: Bit) -> Bit:
    return b.gate("OR", x, y)


def nand_bit(b: ProgramBuilder, x: Bit, y: Bit) -> Bit:
    return b.gate("NAND", x, y)


def nor_bit(b: ProgramBuilder, x: Bit, y: Bit) -> Bit:
    return b.gate("NOR", x, y)


def _release_copies(b: ProgramBuilder, originals, harmonised) -> None:
    """Free the parity copies harmonise created (not the originals)."""
    original_rows = {bit.row for bit in originals}
    for bit in harmonised:
        if bit.row not in original_rows:
            b.release(bit)


def xor_bit(b: ProgramBuilder, x: Bit, y: Bit) -> Bit:
    """XOR from four NANDs (plus the two parity copies of the operands
    that feeding ``t1`` back alongside them requires)."""
    with b.scope("xor"):
        hx, hy = b.harmonise([x, y])
        t1 = b.gate("NAND", hx, hy)  # opposite parity to the operands
        x_m = b.copy(hx)  # mirror onto t1's parity
        y_m = b.copy(hy)
        t2 = b.gate("NAND", x_m, t1)
        t3 = b.gate("NAND", y_m, t1)
        out = b.gate("NAND", t2, t3)
        b.release(t1, x_m, y_m, t2, t3)
        _release_copies(b, (x, y), (hx, hy))
        return out


def xnor_bit(b: ProgramBuilder, x: Bit, y: Bit) -> Bit:
    """XNOR — the BNN "multiplication" — as XOR followed by NOT."""
    with b.scope("xnor"):
        t = xor_bit(b, x, y)
        out = b.gate("NOT", t)
        b.release(t)
        return out


def tmr_bit(
    b: ProgramBuilder,
    gate: str,
    *inputs: Bit,
    voter: str = "MAJ3",
    verify: bool = False,
) -> Bit:
    """Triple-modular-redundant gate: three copies + a majority vote.

    Emits the gate three times into fresh rows (all on one parity, so
    the voter needs no harmonising copies) and reduces them with a
    3-input majority.  A single faulted copy — a stochastic output
    flip, an array disturb on one copy's row — is outvoted, at 4x the
    gate count; use it for the few bits whose silent corruption is
    unacceptable (accumulator sign, loop guards).

    ``voter`` picks the reduction: ``"MAJ3"`` is the direct single-gate
    vote but is preset-1 and unreachable on Projected STT (the
    voltage-delivery analysis, EXPERIMENTS.md finding 2); ``"MIN3"``
    votes with minority + NOT — one extra gate, works on every
    technology, and the result lands back on the copies' parity.

    ``verify=True`` closes the residual hole: the vote outvotes a
    fault in any *copy*, but a single flip on the voter's own output
    row is silent — TMR protects its inputs, never its own output.
    With the flag set, every voter instruction (the MAJ3, or both the
    MIN3 and its NOT) is marked via
    :meth:`~repro.compile.builder.ProgramBuilder.mark_verify`, so the
    fault layer re-reads exactly those rows and a voter-row flip is
    detected-and-retried instead of corrupting the result.
    """
    voter = voter.upper()
    if voter not in ("MAJ3", "MIN3"):
        raise ValueError(f"voter must be MAJ3 or MIN3, not {voter!r}")
    with b.scope("tmr"):
        copies = [b.gate(gate, *inputs) for _ in range(3)]
        if voter == "MAJ3":
            out = b.gate("MAJ3", *copies)
            if verify:
                b.mark_verify()
        else:
            minority = b.gate("MIN3", *copies)
            if verify:
                b.mark_verify()
            out = b.gate("NOT", minority)
            if verify:
                b.mark_verify()
            b.release(minority)
        b.release(*copies)
        return out


def mux_bit(b: ProgramBuilder, select: Bit, when0: Bit, when1: Bit) -> Bit:
    """2:1 multiplexer: out = select ? when1 : when0."""
    with b.scope("mux"):
        ns = b.gate("NOT", select)
        a = b.gate("AND", select, when1)
        c = b.gate("AND", ns, when0)
        out = b.gate("OR", a, c)
        b.release(ns, a, c)
        return out


def half_add(b: ProgramBuilder, x: Bit, y: Bit) -> tuple[Bit, Bit]:
    """(sum, carry): sum = x ^ y (4 NANDs), carry = x & y (1 AND)."""
    with b.scope("half_add"):
        hx, hy = b.harmonise([x, y])
        s = xor_bit(b, hx, hy)
        c = b.gate("AND", hx, hy)
        _release_copies(b, (x, y), (hx, hy))
        return s, c


def full_add(b: ProgramBuilder, x: Bit, y: Bit, cin: Bit) -> tuple[Bit, Bit]:
    """(sum, carry-out) via the paper's nine-NAND full adder.

    With x, y, cin on parity p the outputs both land on parity p, so
    ripple chains need no extra copies between stages::

        t1   = NAND(x, y)            t5 = NAND(axb, cin')
        t2   = NAND(x', t1)          t6 = NAND(axb', t5)
        t3   = NAND(y', t1)          t7 = NAND(cin, t5)
        axb  = NAND(t2, t3)          s  = NAND(t6, t7)
                                     cout = NAND(t1, t5')

    Primed values are BUF mirrors demanded by the parity rule.
    """
    with b.scope("full_add"):
        originals = (x, y, cin)
        x, y, cin = b.harmonise([x, y, cin])
        t1 = b.gate("NAND", x, y)
        x_m = b.copy(x)
        y_m = b.copy(y)
        t2 = b.gate("NAND", x_m, t1)
        t3 = b.gate("NAND", y_m, t1)
        axb = b.gate("NAND", t2, t3)  # x ^ y, on parity 1-p
        cin_m = b.copy(cin)  # mirror cin onto 1-p to meet axb
        t5 = b.gate("NAND", axb, cin_m)  # parity p
        axb_m = b.copy(axb)
        t6 = b.gate("NAND", axb_m, t5)
        t7 = b.gate("NAND", cin, t5)
        s = b.gate("NAND", t6, t7)
        t5_m = b.copy(t5)
        cout = b.gate("NAND", t1, t5_m)
        b.release(t1, x_m, y_m, t2, t3, axb, cin_m, axb_m, t6, t7, t5, t5_m)
        _release_copies(b, originals, (x, y, cin))
        return s, cout


def full_add_min3(b: ProgramBuilder, x: Bit, y: Bit, cin: Bit) -> tuple[Bit, Bit]:
    """Alternative full adder using the 3-input minority gate.

    The CRAM literature (Zabihi et al.) builds adders from majority
    logic; with MOUSE's 3-input ISA the carry is
    ``cout = NOT(MIN3(x, y, cin))``, replacing the 9-NAND adder's final
    NAND and its mirror copy.  Reproduction finding (see the ablation
    experiment): on CRAM the swap is an instruction-count *wash* — both
    constructions need 14 gates — because the bitline-parity rule costs
    a gate either way (a mirror copy there, an inversion here); only a
    ~1% energy edge remains (MIN3+NOT draw slightly less than
    NAND+BUF).  A single-gate ``MAJ3`` carry exists but lands on the
    wrong parity for the ripple chain *and* is a preset-1 gate, which
    the voltage-delivery analysis shows is unreachable on Projected STT
    (EXPERIMENTS.md, finding 2) — MIN3 is the inverting-family choice.
    """
    with b.scope("full_add_min3"):
        originals = (x, y, cin)
        x, y, cin = b.harmonise([x, y, cin])
        # Carry: MIN3 + NOT (inputs already share a parity).
        n1 = b.gate("MIN3", x, y, cin)
        cout = b.gate("NOT", n1)
        # Sum: (x ^ y) ^ cin with explicit parity mirrors, as in full_add.
        t1 = b.gate("NAND", x, y)
        x_m = b.copy(x)
        y_m = b.copy(y)
        t2 = b.gate("NAND", x_m, t1)
        t3 = b.gate("NAND", y_m, t1)
        axb = b.gate("NAND", t2, t3)  # parity 1-p
        cin_m = b.copy(cin)
        t5 = b.gate("NAND", axb, cin_m)  # parity p
        axb_m = b.copy(axb)
        t6 = b.gate("NAND", axb_m, t5)
        t7 = b.gate("NAND", cin, t5)
        s = b.gate("NAND", t6, t7)  # parity p, same as cout
        b.release(n1, t1, x_m, y_m, t2, t3, axb, cin_m, t5, axb_m, t6, t7)
        _release_copies(b, originals, (x, y, cin))
        return s, cout

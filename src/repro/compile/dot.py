"""Dot products — the inner loops of SVM and BNN inference.

Per the paper's Section VI mapping, the elements of the two vectors
share a column; they are element-wise multiplied and summed by a gate
sequence, and partial results from different columns are later combined
through reads and writes.  This module emits the *in-column* part
bit-exactly (used by tests and the small end-to-end demos); the
column/tile-level scaling arithmetic lives with the workload models in
:mod:`repro.ml.mapping`.
"""

from __future__ import annotations

import math

from repro.compile.arith import (
    multiply,
    multiply_signed,
    popcount,
    ripple_add,
    ripple_add_mod,
    sign_extend,
    xnor_word,
)
from repro.compile.builder import ProgramBuilder, Word


def emit_dot_product(
    b: ProgramBuilder, xs: list[Word], ys: list[Word], signed: bool = False
) -> Word:
    """Sum of element-wise products of two placed vectors (one column).

    Unsigned products accumulate with a growing carry-out; signed
    products are sign-extended to the full accumulator width and summed
    modulo 2**width (two's complement).  Intermediate products are
    freed as the accumulation proceeds, so the peak scratch usage stays
    near one product plus the accumulator.
    """
    if len(xs) != len(ys) or not xs:
        raise ValueError("vectors must be equal, non-zero length")
    with b.scope("dot_product"):
        return _emit_dot_product(b, xs, ys, signed)


def _emit_dot_product(
    b: ProgramBuilder, xs: list[Word], ys: list[Word], signed: bool
) -> Word:
    if not signed:
        acc: Word | None = None
        for x, y in zip(xs, ys):
            product = multiply(b, x, y)
            if acc is None:
                acc = product
            else:
                total = ripple_add(b, acc, product)
                b.release(*acc.bits, *product.bits)
                acc = total
        assert acc is not None
        return acc

    width = (
        max(len(x) for x in xs)
        + max(len(y) for y in ys)
        + max(1, math.ceil(math.log2(len(xs))))
    )
    acc = None
    for x, y in zip(xs, ys):
        product = multiply_signed(b, x, y)
        extended = sign_extend(b, product, width)
        if acc is None:
            acc = extended
        else:
            total = ripple_add_mod(b, acc, extended, width)
            b.release(*acc.bits, *extended.bits)
            acc = total
    assert acc is not None
    return acc


def emit_binary_dot(b: ProgramBuilder, x: Word, w: Word) -> Word:
    """BNN dot product: popcount(XNOR(x, w)).

    With +1/-1 encoding the signed dot product is
    ``2 * popcount(xnor) - n``; the affine correction is folded into the
    layer threshold at training time, so hardware only needs this count.
    """
    with b.scope("binary_dot"):
        matches = xnor_word(b, x, w)
        count = popcount(b, matches)
        b.release(*matches)
        return count


def emit_and_dot(b: ProgramBuilder, x: Word, w: Word) -> Word:
    """Binarised-input SVM dot product: popcount(AND(x, w)).

    Binarising MNIST lets multiplications become AND gates
    (Section VIII) — this is that code path.
    """
    if len(x) != len(w):
        raise ValueError("vectors must be equal length")
    with b.scope("and_dot"):
        hits = [b.gate("AND", x[i], w[i]) for i in range(len(x))]
        count = popcount(b, hits)
        b.release(*hits)
        return count

"""Command-line entry point.

    python -m repro list                 # available experiments
    python -m repro run <name> [...]     # run selected experiments
    python -m repro all [--skip-accuracy]
    python -m repro info                 # technologies and gate designs
    python -m repro export [directory]   # write every artifact as CSV
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.runner import EXPERIMENTS


def _experiment_map() -> dict[str, object]:
    out = {}
    for label, entry in EXPERIMENTS:
        key = label.split(" ")[0].lower().rstrip(":")
        # e.g. "table" collides; use the full slug too.
        slug = (
            label.lower()
            .replace(" ", "-")
            .replace("(", "")
            .replace(")", "")
        )
        out[slug] = entry
        out.setdefault(key, entry)
    return out


def cmd_list() -> int:
    print("available experiments (python -m repro run <slug>):")
    for label, _ in EXPERIMENTS:
        slug = (
            label.lower().replace(" ", "-").replace("(", "").replace(")", "")
        )
        print(f"  {slug}")
    return 0


def cmd_run(names: list[str]) -> int:
    table = _experiment_map()
    status = 0
    for name in names:
        entry = table.get(name.lower())
        if entry is None:
            print(f"unknown experiment {name!r}; try 'python -m repro list'")
            status = 2
            continue
        entry()
    return status


def cmd_all(skip_accuracy: bool) -> int:
    from repro.experiments import accuracy

    for label, entry in EXPERIMENTS:
        if skip_accuracy and entry is accuracy.main:
            continue
        print(f"\n=== {label} ===")
        entry()
    return 0


def cmd_info() -> int:
    from repro.experiments import table2_devices

    table2_devices.main()
    return 0


def cmd_export(directory: str) -> int:
    from repro.experiments.export import export_all

    for name, count in export_all(directory).items():
        print(f"  {name}.csv: {count} rows")
    print(f"wrote CSVs to {directory}/")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list experiment slugs")
    run_p = sub.add_parser("run", help="run selected experiments")
    run_p.add_argument("names", nargs="+")
    all_p = sub.add_parser("all", help="run every experiment")
    all_p.add_argument("--skip-accuracy", action="store_true")
    sub.add_parser("info", help="device technologies and gate designs")
    export_p = sub.add_parser("export", help="write every artifact as CSV")
    export_p.add_argument("directory", nargs="?", default="results")

    args = parser.parse_args(argv)
    if args.command == "list":
        return cmd_list()
    if args.command == "run":
        return cmd_run(args.names)
    if args.command == "all":
        return cmd_all(args.skip_accuracy)
    if args.command == "info":
        return cmd_info()
    if args.command == "export":
        return cmd_export(args.directory)
    return 2  # pragma: no cover


if __name__ == "__main__":
    sys.exit(main())

"""Command-line entry point.

    python -m repro list                 # available experiments
    python -m repro run <name> [...]     # run selected experiments
    python -m repro run <name> --seed 7 --events ev.jsonl --manifest
    python -m repro all [--skip-accuracy]
    python -m repro info                 # technologies and gate designs
    python -m repro export [directory]   # write every artifact as CSV
    python -m repro stats ev.jsonl       # replay a telemetry event log
    python -m repro faults --seed 7 --out report.json   # fault campaign
    python -m repro harden --out frontier.json   # protection frontier
    python -m repro bench [--quick]      # hot-path microbenchmarks
    python -m repro bench --compare OLD.json [NEW.json]  # regression diff
    python -m repro profile svm          # per-scope energy attribution
    python -m repro profile svm-adult --power 100 --flame-energy e.folded
    python -m repro run fig9 --serve-metrics 9464   # live /metrics scrape
    python -m repro run fig9 --jobs 4    # parallel sweep, same bytes out
    python -m repro run fig9 --checkpoint-dir ckpt   # resumable sweep
    python -m repro resume ckpt          # continue a killed run
    python -m repro env list             # synthetic harvest-trace families
    python -m repro env describe solar --seed 1 --save solar.jsonl
    python -m repro env replay svm-adult solar --adaptive --json
    python -m repro env sweep            # adaptive vs fixed, per family
    python -m repro lint                 # statically verify programs
    python -m repro lint svm --json      # one target, JSON diagnostics
    python -m repro lint --asm prog.asm --rows 256 --cols 8
    python -m repro verify               # prove programs vs golden semantics
    python -m repro verify svm --hardened --json
    python -m repro verify --asm prog.asm --spec spec.json --rows 256
    python -m repro verify --mutants     # seeded-miscompilation corpus
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import dataclass
from typing import Optional

from repro.experiments.runner import EXPERIMENTS


def _slug(label: str) -> str:
    return label.lower().replace(" ", "-").replace("(", "").replace(")", "")


@dataclass(frozen=True)
class AmbiguousSlug:
    """A short name matched by several experiments."""

    key: str
    candidates: tuple[str, ...]


def _experiment_map() -> dict[str, object]:
    out: dict[str, object] = {}
    short: dict[str, list[str]] = {}
    for label, entry in EXPERIMENTS:
        slug = _slug(label)
        out[slug] = entry
        key = label.split(" ")[0].lower().rstrip(":")
        short.setdefault(key, []).append(slug)
    # Short names are conveniences; one that fans out to several
    # experiments ("table") is an error listing the candidates rather
    # than a silent pick of whichever came first.
    for key, slugs in short.items():
        if key in out:
            continue
        if len(slugs) == 1:
            out[key] = out[slugs[0]]
        else:
            out[key] = AmbiguousSlug(key, tuple(slugs))
    return out


def cmd_list() -> int:
    print("available experiments (python -m repro run <slug>):")
    for label, _ in EXPERIMENTS:
        print(f"  {_slug(label)}")
    return 0


def _seed_everything(seed: Optional[int]) -> None:
    """Seed the stdlib and numpy global RNGs (experiments draw from both)."""
    if seed is None:
        return
    import random

    import numpy as np

    random.seed(seed)
    np.random.seed(seed)


def _apply_jobs(jobs: Optional[int]) -> int:
    """Resolve ``--jobs`` (0 = all cores) and make it the process default.

    Parallelism is an opt-in throughput knob: results are byte-identical
    at any job count (deterministic per-task seeding + ordered merges),
    so the only observable difference is wall time — and the manifest
    records the count used.
    """
    from repro.perf.parallel import cpu_count, set_default_jobs

    resolved = 1 if jobs is None else (cpu_count() if jobs == 0 else jobs)
    set_default_jobs(resolved)
    return resolved


SESSION_SCHEMA = "repro.durability.session/v1"


def _write_session(checkpoint_dir: str, payload: dict) -> None:
    """Record the invocation in ``<dir>/session.json`` so ``python -m
    repro resume <dir>`` can replay it without re-typing arguments."""
    from pathlib import Path

    from repro.durability.atomic import atomic_write_json

    directory = Path(checkpoint_dir)
    directory.mkdir(parents=True, exist_ok=True)
    atomic_write_json(
        directory / "session.json",
        {"schema": SESSION_SCHEMA, **payload},
        sort_keys=True,
    )


def _read_session(checkpoint_dir: str) -> dict:
    import json
    from pathlib import Path

    path = Path(checkpoint_dir) / "session.json"
    try:
        session = json.loads(path.read_text())
    except OSError as exc:
        raise SystemExit(f"cannot resume: {exc}")
    except ValueError as exc:
        raise SystemExit(f"cannot resume: {path} is not valid JSON: {exc}")
    if not isinstance(session, dict) or session.get("schema") != SESSION_SCHEMA:
        raise SystemExit(
            f"cannot resume: {path} does not carry schema {SESSION_SCHEMA}"
        )
    return session


def cmd_run(
    names: list[str],
    events: Optional[str] = None,
    trace: Optional[str] = None,
    manifest: Optional[str] = None,
    seed: Optional[int] = None,
    jobs: Optional[int] = None,
    checkpoint_dir: Optional[str] = None,
    resumed: bool = False,
    serve_metrics: Optional[int] = None,
    no_compiled: bool = False,
) -> int:
    from repro import compilejit, obs
    from repro.durability import Interrupted, graceful_signals
    from repro.experiments.runner import RESUMABLE

    if resumed and checkpoint_dir is None:
        print("--resume requires --checkpoint-dir")
        return 2
    _seed_everything(seed)
    compilejit.set_enabled(not no_compiled)
    n_jobs = _apply_jobs(jobs)
    table = _experiment_map()
    if checkpoint_dir is not None:
        if resumed:
            _read_session(checkpoint_dir)  # must exist and carry the schema
        _write_session(
            checkpoint_dir,
            {
                "command": "run",
                "names": names,
                "events": events,
                "trace": trace,
                "manifest": manifest,
                "seed": seed,
                "jobs": jobs,
                "no_compiled": no_compiled,
            },
        )
    try:
        telemetry = obs.from_paths(events=events, trace=trace)
    except OSError as exc:
        print(f"cannot open telemetry output: {exc}")
        return 2
    server = None
    if serve_metrics is not None:
        from repro.obs.export import MetricsServer

        try:
            server = MetricsServer(telemetry, port=serve_metrics).start()
        except OSError as exc:
            print(f"cannot serve metrics: {exc}")
            telemetry.close()
            return 2
        print(f"metrics: {server.url}/metrics")
    status = 0
    interrupted: Optional[Interrupted] = None
    started = time.perf_counter()
    ran: list[str] = []
    try:
        with graceful_signals(), obs.use(telemetry):
            for name in names:
                entry = table.get(name.lower())
                if entry is None:
                    print(
                        f"unknown experiment {name!r}; "
                        "try 'python -m repro list'"
                    )
                    status = 2
                    continue
                if isinstance(entry, AmbiguousSlug):
                    print(
                        f"ambiguous experiment {name!r}; candidates: "
                        + ", ".join(entry.candidates)
                    )
                    status = 2
                    continue
                with telemetry.span(name.lower()):
                    if checkpoint_dir is not None and entry in RESUMABLE:
                        entry(
                            checkpoint_dir=f"{checkpoint_dir}/{name.lower()}"
                        )
                    else:
                        entry()
                ran.append(name.lower())
    except Interrupted as exc:
        interrupted = exc
        print(f"\ninterrupted ({exc}); flushing telemetry and manifest")
    wall = time.perf_counter() - started
    if server is not None:
        server.close()
    telemetry.close()

    if telemetry.enabled and interrupted is None:
        _print_telemetry_summary(telemetry, events, trace)
    if manifest is not None:
        from repro.obs.manifest import write_manifest
        from repro.perf.parallel import last_fanout

        path = write_manifest(
            manifest,
            command=["python", "-m", "repro", "run"] + names,
            config={
                "experiments": ran,
                "events": events,
                "trace": trace,
                "jobs": n_jobs,
                "checkpoint_dir": checkpoint_dir,
                "compiled": compilejit.enabled(),
            },
            seed=seed,
            wall_time_s=wall,
            metrics=telemetry.snapshot() if telemetry.enabled else None,
            extra={
                "interrupted": interrupted is not None,
                "resumed": resumed,
                "fanout": last_fanout(),
                "compilejit": compilejit.stats_snapshot(),
            },
        )
        print(f"manifest: {path}")
    if interrupted is not None:
        if checkpoint_dir is not None:
            print(f"resume with: python -m repro resume {checkpoint_dir}")
        return interrupted.exit_code
    return status


def cmd_resume(checkpoint_dir: str, jobs: Optional[int] = None) -> int:
    """Replay the invocation recorded in ``<dir>/session.json``,
    reusing every per-task result already on disk."""
    session = _read_session(checkpoint_dir)
    if session.get("command") != "run":
        raise SystemExit(
            f"cannot resume: unknown session command {session.get('command')!r}"
        )
    return cmd_run(
        list(session.get("names") or []),
        events=session.get("events"),
        trace=session.get("trace"),
        manifest=session.get("manifest"),
        seed=session.get("seed"),
        jobs=jobs if jobs is not None else session.get("jobs"),
        checkpoint_dir=checkpoint_dir,
        resumed=True,
        no_compiled=bool(session.get("no_compiled")),
    )


def _print_telemetry_summary(telemetry, events, trace) -> None:
    print(f"\ntelemetry: {telemetry.events_emitted:,} events emitted")
    if trace:
        print(f"  perfetto trace: {trace} (open in https://ui.perfetto.dev)")
    if events:
        from repro.obs.replay import replay

        stats = replay(events, top=0)
        print(f"  event log: {events}")
        if stats.energy_by_category:
            print("  per-category energy sums from the event log (J):")
            for category in sorted(stats.energy_by_category):
                print(
                    f"    {category:10s} {stats.energy_by_category[category]!r}"
                )
            print(f"    {'TOTAL':10s} {stats.total_energy!r}")


def cmd_all(skip_accuracy: bool, jobs: Optional[int] = None) -> int:
    from repro.durability import Interrupted, graceful_signals
    from repro.experiments import accuracy

    _apply_jobs(jobs)
    try:
        with graceful_signals():
            for label, entry in EXPERIMENTS:
                if skip_accuracy and entry is accuracy.main:
                    continue
                print(f"\n=== {label} ===")
                entry()
    except Interrupted as exc:
        print(f"\ninterrupted ({exc})")
        return exc.exit_code
    return 0


def cmd_info() -> int:
    from repro.experiments import table2_devices

    table2_devices.main()
    return 0


def cmd_export(directory: str) -> int:
    from repro.experiments.export import export_all

    for name, count in export_all(directory).items():
        print(f"  {name}.csv: {count} rows")
    print(f"wrote CSVs to {directory}/")
    return 0


def cmd_faults(args) -> int:
    from repro import obs
    from repro.devices.parameters import ALL_TECHNOLOGIES
    from repro.faults import FaultCampaign, FaultPlan, WORKLOADS, render

    techs = {p.name.lower().replace(" ", "-"): p for p in ALL_TECHNOLOGIES}
    params = techs.get(args.tech.lower())
    if params is None:
        print(f"unknown technology {args.tech!r}; one of: {', '.join(sorted(techs))}")
        return 2
    plan = FaultPlan.from_variation(
        params,
        sigma=args.sigma,
        trials=args.derive_trials,
        scale=args.gate_scale,
        array_flip_rate=args.array_rate,
        nv_corruption_rate=args.nv_rate,
        outage_rate=args.outage_rate,
        verify_retry=not args.no_retry,
        retry_budget=args.retry_budget,
    )
    try:
        telemetry = obs.from_paths(events=args.events, trace=args.trace)
    except OSError as exc:
        print(f"cannot open telemetry output: {exc}")
        return 2
    from repro.durability import Interrupted, graceful_signals

    n_jobs = _apply_jobs(args.jobs)
    started = time.perf_counter()
    interrupted: Optional[Interrupted] = None
    report = None
    try:
        with graceful_signals(), obs.use(telemetry):
            with telemetry.span("fault-campaign"):
                campaign = FaultCampaign(
                    workload=WORKLOADS[args.workload](tech=params),
                    plan=plan,
                    trials=args.trials,
                    seed=args.seed,
                )
                report = campaign.run(
                    jobs=n_jobs, checkpoint_dir=args.checkpoint_dir
                )
    except Interrupted as exc:
        interrupted = exc
        print(f"\ninterrupted ({exc}); flushing telemetry and manifest")
    wall = time.perf_counter() - started
    telemetry.close()

    if interrupted is None:
        print(render(report))
    if interrupted is None:
        if args.out is not None:
            from repro.durability.atomic import atomic_write_text

            atomic_write_text(args.out, report.to_json())
            print(f"report: {args.out}")
        else:
            sys.stdout.write(report.to_json())
        if telemetry.enabled:
            _print_telemetry_summary(telemetry, args.events, args.trace)
    if args.manifest is not None:
        from repro.obs.manifest import write_manifest
        from repro.perf.parallel import last_fanout

        path = write_manifest(
            args.manifest,
            command=["python", "-m", "repro", "faults"],
            config={
                "workload": args.workload,
                "technology": params.name,
                "trials": args.trials,
                "plan": plan.to_json_obj(),
                "out": args.out,
                "jobs": n_jobs,
                "checkpoint_dir": args.checkpoint_dir,
            },
            seed=args.seed,
            wall_time_s=wall,
            metrics=telemetry.snapshot() if telemetry.enabled else None,
            extra={
                "interrupted": interrupted is not None,
                "fanout": last_fanout(),
            },
        )
        print(f"manifest: {path}")
    if interrupted is not None:
        return interrupted.exit_code
    return 1 if report.sdc else 0


def cmd_harden(args) -> int:
    from repro import obs
    from repro.devices.parameters import ALL_TECHNOLOGIES
    from repro.harden.frontier import format_table, report_json, run_frontier

    techs = {p.name.lower().replace(" ", "-"): p for p in ALL_TECHNOLOGIES}
    if args.tech == ["all"]:
        selected = list(ALL_TECHNOLOGIES)
    else:
        selected = []
        for name in args.tech:
            params = techs.get(name.lower())
            if params is None:
                print(
                    f"unknown technology {name!r}; "
                    f"one of: all, {', '.join(sorted(techs))}"
                )
                return 2
            selected.append(params)
    try:
        telemetry = obs.from_paths(events=args.events, trace=args.trace)
    except OSError as exc:
        print(f"cannot open telemetry output: {exc}")
        return 2
    from repro.durability import Interrupted, graceful_signals

    n_jobs = _apply_jobs(args.jobs)
    started = time.perf_counter()
    interrupted: Optional[Interrupted] = None
    report = None
    try:
        with graceful_signals(), obs.use(telemetry):
            with telemetry.span("harden-frontier"):
                report = run_frontier(
                    workloads=args.workloads,
                    technologies=selected,
                    levels=args.levels,
                    trials=args.trials,
                    seed=args.seed,
                    target_flips=args.target_flips,
                    tmr_share=args.tmr_share,
                    jobs=n_jobs,
                    checkpoint_dir=args.checkpoint_dir,
                )
    except Interrupted as exc:
        interrupted = exc
        print(f"\ninterrupted ({exc}); flushing telemetry and manifest")
    wall = time.perf_counter() - started
    telemetry.close()

    if interrupted is None:
        print(format_table(report))
        if args.out is not None:
            from repro.durability.atomic import atomic_write_text

            atomic_write_text(args.out, report_json(report))
            print(f"report: {args.out}")
        if telemetry.enabled:
            _print_telemetry_summary(telemetry, args.events, args.trace)
    if args.manifest is not None:
        from repro.obs.manifest import write_manifest
        from repro.perf.parallel import last_fanout

        path = write_manifest(
            args.manifest,
            command=["python", "-m", "repro", "harden"],
            config={
                "workloads": list(args.workloads),
                "technologies": [p.name for p in selected],
                "levels": list(args.levels),
                "trials": args.trials,
                "target_flips": args.target_flips,
                "tmr_share": args.tmr_share,
                "out": args.out,
                "jobs": n_jobs,
                "checkpoint_dir": args.checkpoint_dir,
            },
            seed=args.seed,
            wall_time_s=wall,
            metrics=telemetry.snapshot() if telemetry.enabled else None,
            extra={
                "interrupted": interrupted is not None,
                "fanout": last_fanout(),
            },
        )
        print(f"manifest: {path}")
    if interrupted is not None:
        return interrupted.exit_code
    return 0 if report["checks"]["ok"] else 1


def cmd_lint(args) -> int:
    import json

    from repro.core.program import Program
    from repro.lint import (
        RULES,
        LintConfig,
        Linter,
        TARGETS,
        render,
    )

    if args.rules:
        for rule in RULES.values():
            print(f"{rule.id}  [{rule.severity}]  {rule.title}")
            print(f"    {rule.why}")
        return 0
    if args.list:
        print("lintable program targets (python -m repro lint <name>):")
        for name, target in sorted(TARGETS.items()):
            print(f"  {name:12s} {target.description}")
        return 0

    jobs: list[tuple[str, Program, LintConfig]] = []
    if args.asm is not None:
        from repro.isa.assembler import AssemblerError, assemble

        try:
            with open(args.asm, "r", encoding="utf-8") as f:
                instructions = assemble(f.read())
        except OSError as exc:
            print(f"cannot read {args.asm}: {exc}")
            return 2
        except (AssemblerError, ValueError) as exc:
            print(f"cannot assemble {args.asm}: {exc}")
            return 2
        config = LintConfig(
            n_data_tiles=args.tiles, rows=args.rows, cols=args.cols
        )
        jobs.append((args.asm, Program(instructions, name=args.asm), config))
    else:
        names = args.targets or ["all"]
        if names == ["all"]:
            names = sorted(TARGETS)
        for name in names:
            target = TARGETS.get(name)
            if target is None:
                print(
                    f"unknown lint target {name!r}; "
                    "try 'python -m repro lint --list'"
                )
                return 2
            program, config = target.build()
            jobs.append((name, program, config))

    status = 0
    reports = []
    for name, program, config in jobs:
        report = Linter(config).run(program, name=name)
        reports.append(report)
        if not report.ok:
            status = 1
        if not args.json:
            print(render(report))
    if args.json:
        payload = [r.to_json_obj() for r in reports]
        print(json.dumps(payload[0] if len(payload) == 1 else payload,
                         indent=2, sort_keys=True))
    return status


def cmd_verify(args) -> int:
    import json

    from repro.core.program import Program
    from repro.lint import RULES, LintConfig, render
    from repro.verify import (
        ReExecutionPass,
        SemanticSpec,
        SemanticsPass,
        VERIFY_TARGETS,
        build_verify_target,
        hardened_job,
        run_mutation_corpus,
        verify_program,
    )

    if args.rules:
        for rule in RULES.values():
            if not rule.id.startswith(("SEM", "REEX")):
                continue
            print(f"{rule.id}  [{rule.severity}]  {rule.title}")
            print(f"    {rule.why}")
        return 0
    if args.list:
        print("verifiable program targets (python -m repro verify <name>):")
        for name, target in sorted(VERIFY_TARGETS.items()):
            print(f"  {name:12s} {target.description}")
        return 0
    if args.mutants:
        rows = run_mutation_corpus(strict=False)
        escaped = [
            r for r in rows if not r["structural_ok"] or not r["refuted"]
        ]
        if args.json:
            print(json.dumps(rows, indent=2, sort_keys=True))
        else:
            for r in rows:
                verdict = (
                    f"refuted by {','.join(r['rules'])}"
                    if r["refuted"]
                    else "NOT refuted"
                )
                green = "green" if r["structural_ok"] else "NOT green"
                print(f"{r['name']}: lint {green}, {verdict}")
            print(
                f"mutants: {len(rows)} total, "
                f"{len(rows) - len(escaped)} structurally-green + refuted"
            )
        return 1 if escaped else 0

    status = 0
    reports = []
    if args.asm is not None:
        from repro.isa.assembler import AssemblerError, assemble

        try:
            with open(args.asm, "r", encoding="utf-8") as f:
                instructions = assemble(f.read())
        except OSError as exc:
            print(f"cannot read {args.asm}: {exc}")
            return 2
        except (AssemblerError, ValueError) as exc:
            print(f"cannot assemble {args.asm}: {exc}")
            return 2
        config = LintConfig(
            n_data_tiles=args.tiles, rows=args.rows, cols=args.cols
        )
        spec = None
        if args.spec is not None:
            try:
                with open(args.spec, "r", encoding="utf-8") as f:
                    spec = SemanticSpec.from_json_obj(json.load(f))
            except (OSError, ValueError, KeyError) as exc:
                print(f"cannot load spec {args.spec}: {exc}")
                return 2
        focus = spec.focus_column if spec is not None else args.focus_column
        constants = (
            {cell: bit for cell, bit in spec.constants}
            if spec is not None
            else None
        )
        passes = []
        if spec is not None:
            passes.append(SemanticsPass(spec))
        if args.against is not None:
            from repro.verify import EquivalencePass

            try:
                with open(args.against, "r", encoding="utf-8") as f:
                    source = Program(
                        assemble(f.read()), name=args.against
                    )
            except OSError as exc:
                print(f"cannot read {args.against}: {exc}")
                return 2
            except (AssemblerError, ValueError) as exc:
                print(f"cannot assemble {args.against}: {exc}")
                return 2
            passes.append(
                EquivalencePass(
                    source, constants=constants, focus_column=focus
                )
            )
        passes.append(
            ReExecutionPass(
                period=args.period, constants=constants, focus_column=focus
            )
        )
        program = Program(instructions, name=args.asm)
        reports.append(verify_program(program, config, passes, name=args.asm))
    else:
        names = args.targets or ["all"]
        if names == ["all"]:
            names = sorted(VERIFY_TARGETS)
        for name in names:
            if name not in VERIFY_TARGETS:
                print(
                    f"unknown verify target {name!r}; "
                    "try 'python -m repro verify --list'"
                )
                return 2
            reports.append(build_verify_target(name).run())
            if args.hardened:
                from repro.harden import HardenPolicy

                policy = HardenPolicy(
                    level=args.level, tmr_share=args.tmr_share
                )
                reports.append(hardened_job(name, policy).run())

    for report in reports:
        if not report.ok:
            status = 1
        if not args.json:
            print(render(report, tool="verify"))
    if args.json:
        payload = [r.to_json_obj() for r in reports]
        print(
            json.dumps(
                payload[0] if len(payload) == 1 else payload,
                indent=2,
                sort_keys=True,
            )
        )
    return status


def cmd_bench(args) -> int:
    from repro import obs
    from repro.durability import Interrupted, graceful_signals
    from repro.perf.bench import (
        compare_reports,
        load_report,
        render,
        render_compare,
        run_bench,
        write_report,
    )

    if args.compare:
        if len(args.compare) > 2:
            print("--compare takes OLD.json and at most one NEW.json")
            return 2
        try:
            old = load_report(args.compare[0])
            new = (
                load_report(args.compare[1])
                if len(args.compare) == 2
                else None
            )
        except (OSError, ValueError) as exc:
            print(f"cannot compare: {exc}")
            return 2
        if new is None:
            # No NEW report: measure the current tree against OLD.
            new = run_bench(quick=args.quick)
        if old.get("quick") != new.get("quick"):
            print(
                "warning: comparing a quick report against a full one; "
                "repetition counts differ"
            )
        comparison = compare_reports(old, new, threshold=args.threshold)
        print(render_compare(comparison))
        return 1 if comparison["regressions"] else 0

    try:
        telemetry = obs.from_paths(events=args.events)
    except OSError as exc:
        print(f"cannot open telemetry output: {exc}")
        return 2
    try:
        with graceful_signals(), obs.use(telemetry):
            report = run_bench(quick=args.quick)
    except Interrupted as exc:
        telemetry.close()
        print(f"\ninterrupted ({exc}); no benchmark report written")
        return exc.exit_code
    telemetry.close()
    print(render(report))
    write_report(report, args.out)
    print(f"report: {args.out}")
    if telemetry.enabled:
        _print_telemetry_summary(telemetry, args.events, None)
    return 0


def cmd_profile(args) -> int:
    """Per-scope energy/latency attribution for one workload.

    Small campaign workloads (``adder``/``svm``/``bnn``) run on the
    cycle-accurate machine, attributing every committed instruction to
    its compile-time scope stack (classifier > macro > primitive);
    Table IV names (``svm-adult``, ``bnn-finn``, ...) run the harvested
    closed-form engine at ``--power``, attributing per profile segment.
    Either way the profiler's root breakdown must equal the run's
    bit-for-bit — the command exits non-zero if it does not.
    """
    from repro.devices.parameters import ALL_TECHNOLOGIES
    from repro.obs.prof import EnergyProfiler

    techs = {p.name.lower().replace(" ", "-"): p for p in ALL_TECHNOLOGIES}
    params = techs.get(args.tech.lower())
    if params is None:
        print(
            f"unknown technology {args.tech!r}; one of: "
            + ", ".join(sorted(techs))
        )
        return 2

    from repro.faults.campaign import WORKLOADS

    profiler = EnergyProfiler()
    name = args.workload.lower()
    if name in WORKLOADS:
        workload = WORKLOADS[name](tech=params)
        mouse = workload.build()
        mouse.attach_profiler(profiler)
        breakdown = mouse.run().breakdown
        header = (
            f"{workload.name} on {params.name} (cycle-accurate, "
            f"{breakdown.instructions} instructions)"
        )
    else:
        from repro.energy.model import InstructionCostModel
        from repro.harvest import HarvestingConfig, ProfileRun
        from repro.ml.benchmarks import ALL_WORKLOADS

        wanted = _slug(args.workload)
        workload = next(
            (w for w in ALL_WORKLOADS if _slug(w.name) == wanted), None
        )
        if workload is None:
            known = sorted(WORKLOADS) + [_slug(w.name) for w in ALL_WORKLOADS]
            print(
                f"unknown workload {args.workload!r}; one of: "
                + ", ".join(known)
            )
            return 2
        cost = InstructionCostModel(params)
        profile = workload.profile(cost)
        config = HarvestingConfig.paper(params, args.power * 1e-6)
        breakdown = ProfileRun(
            profile, cost, config, profiler=profiler
        ).run()
        header = (
            f"{workload.name} at {args.power:g} uW on {params.name} "
            f"(harvested, {breakdown.instructions} instructions)"
        )

    exact = profiler.root == breakdown
    if args.json:
        import json

        from repro.obs.export import profile_json

        payload = profile_json(profiler, top=args.top)
        payload["exact"] = exact
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(f"energy attribution: {header}")
        print(profiler.render(top=args.top))
        print(
            "\nattribution sums "
            + ("bit-exact" if exact else "MISMATCHED")
            + " vs the run breakdown"
        )
    if args.flame_energy:
        n = profiler.write_collapsed(args.flame_energy, metric="energy")
        print(f"energy flamegraph: {args.flame_energy} ({n} stacks; "
              "open in https://speedscope.app)")
    if args.flame_time:
        n = profiler.write_collapsed(args.flame_time, metric="time")
        print(f"time flamegraph: {args.flame_time} ({n} stacks)")
    if args.serve_metrics is not None:
        from repro import obs
        from repro.obs.export import MetricsServer

        server = MetricsServer(
            obs.current(), profiler=profiler, port=args.serve_metrics
        ).start()
        print(
            f"serving {server.url}/metrics and {server.url}/profile "
            "(Ctrl-C to stop)"
        )
        try:
            import threading

            threading.Event().wait()
        except KeyboardInterrupt:
            pass
        finally:
            server.close()
    return 0 if exact else 1


def _build_trace(spec: str, seed: int, watts: float):
    """Resolve a trace argument: a JSONL file path, or a generator
    family name (``constant`` takes ``--watts``; the rest ``--seed``)."""
    import os

    from repro.env import FAMILIES, HarvestTrace, constant

    if os.path.exists(spec):
        return HarvestTrace.load(spec)
    family = spec.lower().replace("-", "_")
    if family == "solar_diurnal":
        family = "solar"
    if family not in FAMILIES:
        raise SystemExit(
            f"unknown trace {spec!r}: not a file, and not one of "
            + ", ".join(sorted(FAMILIES))
        )
    if family == "constant":
        return constant(watts)
    return FAMILIES[family](seed=seed)


def _table_iv_workload(name: str):
    from repro.ml.benchmarks import ALL_WORKLOADS

    wanted = _slug(name)
    workload = next(
        (w for w in ALL_WORKLOADS if _slug(w.name) == wanted), None
    )
    if workload is None:
        raise SystemExit(
            f"unknown workload {name!r}; one of: "
            + ", ".join(_slug(w.name) for w in ALL_WORKLOADS)
        )
    return workload


def cmd_env(args) -> int:
    """Harvest-environment tooling: trace catalog, stats, replay, sweep."""
    import json

    from repro.env import FAMILIES

    if args.env_command == "list":
        print("harvest trace families (python -m repro env describe <name>):")
        for name, generator in sorted(FAMILIES.items()):
            doc = (generator.__doc__ or "").strip().splitlines()[0]
            print(f"  {name:10s} {doc}")
        return 0

    if args.env_command == "describe":
        trace = _build_trace(args.trace, args.seed, args.watts)
        info = trace.describe()
        if args.save is not None:
            trace.save(args.save)
            info["saved"] = args.save
        if args.json:
            print(json.dumps(info, indent=2, sort_keys=True))
        else:
            for key in sorted(info):
                print(f"  {key:12s} {info[key]}")
        return 0

    if args.env_command == "replay":
        from repro.devices.parameters import ALL_TECHNOLOGIES
        from repro.env import AdaptivePolicy, replay

        techs = {p.name.lower().replace(" ", "-"): p for p in ALL_TECHNOLOGIES}
        params = techs.get(args.tech.lower())
        if params is None:
            print(
                f"unknown technology {args.tech!r}; one of: "
                + ", ".join(sorted(techs))
            )
            return 2
        workload = _table_iv_workload(args.workload)
        trace = _build_trace(args.trace, args.seed, args.watts)
        policy = AdaptivePolicy() if args.adaptive else None
        result = replay(
            workload,
            params,
            trace,
            adaptive=policy,
            time_budget=args.budget,
            max_inferences=args.max_inferences,
            checkpoint_period=args.checkpoint_period,
            leakage_amps=args.leakage,
            esr_ohms=args.esr,
        )
        if args.json:
            print(json.dumps(result.to_json_obj(), indent=2, sort_keys=True))
        else:
            obj = result.to_json_obj()
            for key in sorted(obj):
                print(f"  {key:12s} {obj[key]}")
        return 0

    if args.env_command == "sweep":
        from repro.experiments import env_sweep

        rows = env_sweep.run()
        if args.json:
            print(json.dumps(rows, indent=2, sort_keys=True))
        else:
            print(env_sweep.render(rows))
        return 0 if all(r["adaptive_at_least_fixed"] for r in rows) else 1

    return 2  # pragma: no cover


def cmd_stats(path: str, top: int) -> int:
    from repro.obs.replay import render, replay

    try:
        stats = replay(path, top=top)
    except (OSError, ValueError) as exc:
        print(f"cannot read {path}: {exc}")
        return 2
    print(render(stats, top=top))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list experiment slugs")
    run_p = sub.add_parser("run", help="run selected experiments")
    run_p.add_argument("names", nargs="+")
    run_p.add_argument(
        "--seed",
        type=int,
        default=None,
        help="seed the stdlib/numpy RNGs and record it in the manifest",
    )
    run_p.add_argument(
        "--events", metavar="PATH", help="write a JSONL telemetry event log"
    )
    run_p.add_argument(
        "--trace",
        metavar="PATH",
        help="write a Chrome-trace JSON loadable in Perfetto",
    )
    run_p.add_argument(
        "--manifest",
        nargs="?",
        const="runs",
        metavar="DIR",
        help="write a run manifest (default directory: runs/)",
    )
    run_p.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for parallel sweeps (0 = all cores); "
        "results are byte-identical at any count",
    )
    run_p.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        help="persist per-task results (and a session.json) so a killed "
        "run resumes from where it stopped, byte-identically",
    )
    run_p.add_argument(
        "--resume",
        action="store_true",
        help="require an existing session in --checkpoint-dir and mark "
        "the manifest as resumed",
    )
    run_p.add_argument(
        "--serve-metrics",
        type=int,
        nargs="?",
        const=9464,
        default=None,
        metavar="PORT",
        help="serve /metrics (Prometheus text) over HTTP while the run "
        "executes (default port 9464; 0 = ephemeral)",
    )
    run_p.add_argument(
        "--no-compiled",
        action="store_true",
        help="force the scalar microstep interpreter everywhere "
        "(disables the repro.compilejit plan executor; results are "
        "byte-identical either way)",
    )
    resume_p = sub.add_parser(
        "resume",
        help="replay the invocation recorded in a checkpoint directory",
    )
    resume_p.add_argument("checkpoint_dir", metavar="DIR")
    resume_p.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="override the recorded worker count (0 = all cores)",
    )
    faults_p = sub.add_parser(
        "faults", help="run a seeded fault-injection campaign"
    )
    faults_p.add_argument(
        "--workload", choices=("svm", "adder", "bnn"), default="svm"
    )
    faults_p.add_argument(
        "--tech",
        default="modern-stt",
        help="device technology (modern-stt, projected-stt, projected-she)",
    )
    faults_p.add_argument("--trials", type=int, default=16)
    faults_p.add_argument("--seed", type=int, default=0)
    faults_p.add_argument(
        "--sigma",
        type=float,
        default=0.05,
        help="relative device-parameter spread for gate flip rates",
    )
    faults_p.add_argument(
        "--derive-trials",
        type=int,
        default=20_000,
        help="Monte-Carlo samples per gate when deriving flip rates",
    )
    faults_p.add_argument(
        "--gate-scale",
        type=float,
        default=1.0,
        help="multiplier on derived gate flip rates (0 disables gate faults)",
    )
    faults_p.add_argument("--array-rate", type=float, default=0.0)
    faults_p.add_argument("--nv-rate", type=float, default=0.0)
    faults_p.add_argument("--outage-rate", type=float, default=0.0)
    faults_p.add_argument(
        "--no-retry",
        action="store_true",
        help="disable the verify-and-retry recovery layer",
    )
    faults_p.add_argument("--retry-budget", type=int, default=8)
    faults_p.add_argument(
        "--out", metavar="PATH", help="write the JSON report here"
    )
    faults_p.add_argument(
        "--events", metavar="PATH", help="write a JSONL telemetry event log"
    )
    faults_p.add_argument(
        "--trace",
        metavar="PATH",
        help="write a Chrome-trace JSON loadable in Perfetto",
    )
    faults_p.add_argument(
        "--manifest",
        nargs="?",
        const="runs",
        metavar="DIR",
        help="write a run manifest (default directory: runs/)",
    )
    faults_p.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for campaign trials (0 = all cores); "
        "the report JSON is byte-identical at any count",
    )
    faults_p.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        help="persist per-trial results so a killed campaign resumes "
        "with a byte-identical report",
    )
    harden_p = sub.add_parser(
        "harden",
        help="sweep the selective-protection frontier (yield vs energy)",
    )
    harden_p.add_argument(
        "--workloads",
        nargs="+",
        choices=("svm", "bnn", "adder"),
        default=["svm", "bnn"],
        help="campaign workloads to harden (default: svm bnn)",
    )
    harden_p.add_argument(
        "--tech",
        nargs="+",
        default=["all"],
        help="device technologies (modern-stt, projected-stt, "
        "projected-she, or 'all')",
    )
    harden_p.add_argument(
        "--levels",
        nargs="+",
        type=float,
        default=[0.0, 0.25, 0.5, 0.75, 1.0],
        help="protection levels to sweep (fraction of critical gates)",
    )
    harden_p.add_argument("--trials", type=int, default=32)
    harden_p.add_argument("--seed", type=int, default=11)
    harden_p.add_argument(
        "--target-flips",
        type=float,
        default=1.0,
        help="expected injected flips per unhardened trial (rates are "
        "rescaled from the device Monte Carlo to hit this)",
    )
    harden_p.add_argument(
        "--tmr-share",
        type=float,
        default=0.25,
        help="share of protected gates that get TMR (rest verify-retry)",
    )
    harden_p.add_argument(
        "--out", metavar="PATH", help="write the frontier report JSON here"
    )
    harden_p.add_argument(
        "--events", metavar="PATH", help="write a JSONL telemetry event log"
    )
    harden_p.add_argument(
        "--trace",
        metavar="PATH",
        help="write a Chrome-trace JSON loadable in Perfetto",
    )
    harden_p.add_argument(
        "--manifest",
        nargs="?",
        const="runs",
        metavar="DIR",
        help="write a run manifest (default directory: runs/)",
    )
    harden_p.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for frontier points (0 = all cores); "
        "the report JSON is byte-identical at any count",
    )
    harden_p.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        help="persist per-point results so a killed sweep resumes "
        "with a byte-identical report",
    )
    all_p = sub.add_parser("all", help="run every experiment")
    all_p.add_argument("--skip-accuracy", action="store_true")
    all_p.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for parallel sweeps (0 = all cores)",
    )
    bench_p = sub.add_parser(
        "bench", help="run hot-path microbenchmarks, write BENCH_PR9.json"
    )
    bench_p.add_argument(
        "--out", default="BENCH_PR9.json", metavar="PATH",
        help="where to write the benchmark report (default: BENCH_PR9.json)",
    )
    bench_p.add_argument(
        "--quick",
        action="store_true",
        help="smaller repetition counts (the bench-smoke configuration)",
    )
    bench_p.add_argument(
        "--events", metavar="PATH", help="write a JSONL telemetry event log"
    )
    bench_p.add_argument(
        "--compare",
        nargs="+",
        metavar="REPORT",
        help="diff two repro.bench/v1 reports (OLD.json [NEW.json]); "
        "with one path, benchmark the current tree as NEW; exits 1 "
        "past the regression threshold",
    )
    bench_p.add_argument(
        "--threshold",
        type=float,
        default=0.30,
        metavar="FRAC",
        help="fractional ns/op growth counted as a regression "
        "(default 0.30)",
    )
    profile_p = sub.add_parser(
        "profile",
        help="per-scope energy/latency attribution (tables + flamegraphs)",
    )
    profile_p.add_argument(
        "workload",
        help="campaign workload (adder, svm, bnn; cycle-accurate) or "
        "Table IV name (svm-adult, bnn-finn, ...; harvested)",
    )
    profile_p.add_argument(
        "--tech",
        default="modern-stt",
        help="device technology (modern-stt, projected-stt, projected-she)",
    )
    profile_p.add_argument(
        "--power",
        type=float,
        default=100.0,
        metavar="UW",
        help="harvested power in uW for Table IV workloads (default 100)",
    )
    profile_p.add_argument(
        "--top", type=int, default=20, help="rows to print (default 20)"
    )
    profile_p.add_argument(
        "--flame-energy",
        metavar="PATH",
        help="write a collapsed-stack energy flamegraph (attojoules)",
    )
    profile_p.add_argument(
        "--flame-time",
        metavar="PATH",
        help="write a collapsed-stack time flamegraph (picoseconds)",
    )
    profile_p.add_argument(
        "--json", action="store_true", help="emit the table as JSON"
    )
    profile_p.add_argument(
        "--serve-metrics",
        type=int,
        nargs="?",
        const=9464,
        default=None,
        metavar="PORT",
        help="after profiling, serve /metrics and /profile until Ctrl-C",
    )
    env_p = sub.add_parser(
        "env",
        help="harvest environments: trace catalog, stats, replay, sweep",
    )
    env_sub = env_p.add_subparsers(dest="env_command", required=True)
    env_sub.add_parser("list", help="list the synthetic trace families")
    describe_p = env_sub.add_parser(
        "describe", help="summary statistics for a trace (family or file)"
    )
    describe_p.add_argument(
        "trace",
        help="trace family (constant, solar, rf_burst, kinetic) or a "
        "repro.env.trace/v1 JSONL file",
    )
    describe_p.add_argument(
        "--seed", type=int, default=0, help="generator seed (default 0)"
    )
    describe_p.add_argument(
        "--watts",
        type=float,
        default=100e-6,
        help="power level for the constant family (default 100e-6)",
    )
    describe_p.add_argument(
        "--save", metavar="PATH", help="also write the trace as JSONL"
    )
    describe_p.add_argument(
        "--json", action="store_true", help="emit the summary as JSON"
    )
    replay_p = env_sub.add_parser(
        "replay",
        help="replay a Table IV workload under a harvest trace",
    )
    replay_p.add_argument(
        "workload", help="Table IV workload name (svm-adult, bnn-finn, ...)"
    )
    replay_p.add_argument(
        "trace", help="trace family name or a JSONL trace file"
    )
    replay_p.add_argument(
        "--tech",
        default="modern-stt",
        help="device technology (modern-stt, projected-stt, projected-she)",
    )
    replay_p.add_argument(
        "--seed", type=int, default=0, help="generator seed (default 0)"
    )
    replay_p.add_argument(
        "--watts",
        type=float,
        default=100e-6,
        help="power level for the constant family (default 100e-6)",
    )
    replay_p.add_argument(
        "--adaptive",
        action="store_true",
        help="use the adaptive checkpoint policy (default: fixed cadence)",
    )
    replay_p.add_argument(
        "--budget",
        type=float,
        default=None,
        metavar="S",
        help="time budget in simulated seconds (default: four trace spans)",
    )
    replay_p.add_argument(
        "--max-inferences", type=int, default=64, metavar="N"
    )
    replay_p.add_argument(
        "--checkpoint-period", type=int, default=1, metavar="N"
    )
    replay_p.add_argument(
        "--leakage",
        type=float,
        default=0.0,
        metavar="A",
        help="capacitor leakage current in amps (default 0: ideal)",
    )
    replay_p.add_argument(
        "--esr",
        type=float,
        default=0.0,
        metavar="OHMS",
        help="capacitor equivalent series resistance (default 0: ideal)",
    )
    replay_p.add_argument(
        "--json", action="store_true", help="emit the result as JSON"
    )
    sweep_p = env_sub.add_parser(
        "sweep",
        help="adaptive vs fixed checkpointing across the trace families",
    )
    sweep_p.add_argument(
        "--json", action="store_true", help="emit the rows as JSON"
    )
    sub.add_parser("info", help="device technologies and gate designs")
    export_p = sub.add_parser("export", help="write every artifact as CSV")
    export_p.add_argument("directory", nargs="?", default="results")
    stats_p = sub.add_parser(
        "stats", help="replay a JSONL event log into aggregate views"
    )
    stats_p.add_argument("path")
    stats_p.add_argument("--top", type=int, default=10)
    lint_p = sub.add_parser(
        "lint", help="statically verify compiled CRAM programs"
    )
    lint_p.add_argument(
        "targets",
        nargs="*",
        help="registered target names (default: all; see --list)",
    )
    lint_p.add_argument(
        "--asm", metavar="PATH", help="lint an assembly file instead"
    )
    lint_p.add_argument(
        "--tiles", type=int, default=1, help="data tiles in the bank (--asm)"
    )
    lint_p.add_argument(
        "--rows", type=int, default=1024, help="rows per tile (--asm)"
    )
    lint_p.add_argument(
        "--cols", type=int, default=1024, help="columns per tile (--asm)"
    )
    lint_p.add_argument(
        "--json", action="store_true", help="emit JSON diagnostics"
    )
    lint_p.add_argument(
        "--list", action="store_true", help="list lintable targets"
    )
    lint_p.add_argument(
        "--rules", action="store_true", help="print the rule catalog"
    )

    verify_p = sub.add_parser(
        "verify",
        help="prove compiled CRAM programs equivalent to golden semantics",
    )
    verify_p.add_argument(
        "targets",
        nargs="*",
        help="registered verify targets (default: all; see --list)",
    )
    verify_p.add_argument(
        "--asm", metavar="PATH", help="verify an assembly file instead"
    )
    verify_p.add_argument(
        "--spec",
        metavar="PATH",
        help="semantic spec JSON for --asm (inputs/constants/outputs)",
    )
    verify_p.add_argument(
        "--against",
        metavar="PATH",
        help="source assembly --asm must stay equivalent to (SEM003)",
    )
    verify_p.add_argument(
        "--tiles", type=int, default=1, help="data tiles in the bank (--asm)"
    )
    verify_p.add_argument(
        "--rows", type=int, default=1024, help="rows per tile (--asm)"
    )
    verify_p.add_argument(
        "--cols", type=int, default=1024, help="columns per tile (--asm)"
    )
    verify_p.add_argument(
        "--period",
        type=int,
        default=1,
        help="commit-window period for the re-execution pass (--asm)",
    )
    verify_p.add_argument(
        "--focus-column",
        type=int,
        default=0,
        help="column to track symbolically without a spec (--asm)",
    )
    verify_p.add_argument(
        "--json", action="store_true", help="emit JSON diagnostics"
    )
    verify_p.add_argument(
        "--list", action="store_true", help="list verifiable targets"
    )
    verify_p.add_argument(
        "--rules",
        action="store_true",
        help="print the SEM/REEX rule catalog",
    )
    verify_p.add_argument(
        "--mutants",
        action="store_true",
        help="run the seeded-miscompilation corpus",
    )
    verify_p.add_argument(
        "--hardened",
        action="store_true",
        help="also prove each target's hardened rewrite equivalent",
    )
    verify_p.add_argument(
        "--level",
        type=float,
        default=1.0,
        help="hardening protection level for --hardened",
    )
    verify_p.add_argument(
        "--tmr-share",
        type=float,
        default=0.5,
        help="TMR share of the protection budget for --hardened",
    )

    args = parser.parse_args(argv)
    if args.command == "list":
        return cmd_list()
    if args.command == "run":
        return cmd_run(
            args.names,
            events=args.events,
            trace=args.trace,
            manifest=args.manifest,
            seed=args.seed,
            jobs=args.jobs,
            checkpoint_dir=args.checkpoint_dir,
            resumed=args.resume,
            serve_metrics=args.serve_metrics,
            no_compiled=args.no_compiled,
        )
    if args.command == "resume":
        return cmd_resume(args.checkpoint_dir, jobs=args.jobs)
    if args.command == "faults":
        return cmd_faults(args)
    if args.command == "harden":
        return cmd_harden(args)
    if args.command == "all":
        return cmd_all(args.skip_accuracy, jobs=args.jobs)
    if args.command == "bench":
        return cmd_bench(args)
    if args.command == "profile":
        return cmd_profile(args)
    if args.command == "env":
        return cmd_env(args)
    if args.command == "info":
        return cmd_info()
    if args.command == "export":
        return cmd_export(args.directory)
    if args.command == "stats":
        return cmd_stats(args.path, args.top)
    if args.command == "lint":
        return cmd_lint(args)
    if args.command == "verify":
        return cmd_verify(args)
    return 2  # pragma: no cover


if __name__ == "__main__":
    sys.exit(main())

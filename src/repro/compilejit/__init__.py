"""Ahead-of-time compiled execution plans for CRAM programs.

``repro.compilejit`` compiles a linted :class:`~repro.core.program.
Program` into a fused NumPy plan — per-instruction kernel tables,
precomputed column-index gathers, and closed-form energy terms — and
executes whole commit windows without per-instruction Python dispatch.

The scalar :class:`~repro.core.controller.MemoryController` microstep
machine is kept verbatim as the referee: every compiled path reproduces
its :class:`~repro.energy.metrics.Breakdown` (and, where supported, its
:class:`~repro.obs.prof.EnergyProfiler` attribution) **bit for bit**,
enforced by ``make compiled-smoke`` and the equivalence property tests.
Anything a plan cannot model exactly — sensors, fault hooks, telemetry
sinks, checkpoints, lint-rejected programs — silently falls back to the
interpreter.

Execution tiers (see docs/PERFORMANCE.md):

1. scalar microstep interpreter (referee, always correct),
2. cached kernels + batched lock-step (PR 4),
3. compiled plans (this package): continuous runs, intermittent window
   replay, profile replay, and batch x instruction fusion.
"""

from __future__ import annotations

from repro.compilejit.plan import (
    CompiledPlan,
    PlanUnsupported,
    compile_program,
    plan_for_mouse,
)

#: Module-wide switch: set False to force every engine back onto the
#: scalar interpreter (also reachable via ``repro ... --no-compiled``).
ENABLED = True

#: Counters for run manifests: how often the compiled path ran vs fell
#: back to the interpreter (process-wide, monotonically increasing).
STATS = {"compiled_runs": 0, "fallback_runs": 0, "plans_compiled": 0}


def set_enabled(value: bool) -> None:
    global ENABLED
    ENABLED = bool(value)


def enabled() -> bool:
    return ENABLED


def stats_snapshot() -> dict[str, int]:
    return dict(STATS)


__all__ = [
    "CompiledPlan",
    "PlanUnsupported",
    "compile_program",
    "plan_for_mouse",
    "ENABLED",
    "STATS",
    "set_enabled",
    "enabled",
    "stats_snapshot",
]

"""Compiled-executor smoke gate: every plan proven, byte-identical, fast.

    PYTHONPATH=src python -m repro.compilejit.smoke

Four checks over the AOT plan executor (:mod:`repro.compilejit`):

1. **Translation validation** — every registered verify target's
   program compiles to a plan, and the plan's reconstructed program
   (:meth:`CompiledPlan.to_program`) is *symbolically proven*
   equivalent to the source by the PR 8 ``EquivalencePass`` — the plan
   is checked the same way a hardened rewrite is, over every input
   assignment, with zero electrical simulation.
2. **Byte-identity** — every fault-campaign workload, on all three
   technologies, runs compiled and interpreted; the ledgers must be
   ``==`` (float equality, not isclose) and the readouts must match
   the host reference.  The fused ProfileRun engine gets the same
   check on the Figure 9 inner loop.
3. **The compiled path actually runs** — the STATS counters must show
   the compiled executors took every eligible run above; a silent
   fallback would let the interpreter masquerade as the plan executor.
4. **Bench floor** — the in-run ``compiled_step_instruction``
   microbenchmark (quick mode) must beat the scalar interpreter by the
   PR's >= 10x acceptance floor.

Exit status 0 means the compiled executor is healthy; wired into
``make compiled-smoke`` (part of ``make test``).
"""

from __future__ import annotations

import sys

from repro import compilejit


def run_smoke() -> int:
    from repro.devices import ALL_TECHNOLOGIES
    from repro.devices.parameters import MODERN_STT
    from repro.energy.model import InstructionCostModel
    from repro.faults.campaign import WORKLOADS
    from repro.lint import render
    from repro.verify.passes import EquivalencePass
    from repro.verify.targets import VERIFY_TARGETS, build_verify_target
    from repro.verify.verifier import verify_program
    from repro.compilejit.plan import PlanUnsupported, compile_program

    failures: list[str] = []
    was_enabled = compilejit.enabled()
    compilejit.set_enabled(True)
    try:
        # 1. Translation validation: plan programs prove equivalent.
        cost = InstructionCostModel(MODERN_STT)
        for name in sorted(VERIFY_TARGETS):
            job = build_verify_target(name)
            cfg = job.config
            try:
                plan = compile_program(
                    job.program, cost, cfg.n_data_tiles, cfg.rows, cfg.cols
                )
            except PlanUnsupported as exc:
                failures.append(f"target {name!r} did not compile: {exc}")
                continue
            report = verify_program(
                plan.to_program(),
                cfg,
                [
                    EquivalencePass(
                        job.program,
                        constants=job.constants(),
                        focus_column=job.spec.focus_column,
                    )
                ],
                name=f"{name}.plan",
            )
            if report.n_errors:
                failures.append(
                    f"plan for {name!r} not equivalent to its source:\n"
                    f"{render(report, tool='verify')}"
                )
            else:
                print(
                    f"compiled {name!r}: plan proven equivalent "
                    f"({len(plan.ops)} ops, {report.n_instructions} "
                    "instructions)"
                )

        # 2a. Byte-identity: campaign workloads, compiled vs interpreted.
        before = compilejit.stats_snapshot()["compiled_runs"]
        expected_runs = 0
        for wname, factory in sorted(WORKLOADS.items()):
            for tech in ALL_TECHNOLOGIES:
                workload = factory(tech)
                fast = workload.build()
                fast.run()
                ref = workload.build()
                ref.run(compiled=False)
                expected_runs += 1
                if fast.ledger.breakdown != ref.ledger.breakdown:
                    failures.append(
                        f"{wname}/{tech.name}: compiled ledger diverges "
                        "from the interpreter"
                    )
                elif workload.readout(fast) != workload.readout(ref):
                    failures.append(
                        f"{wname}/{tech.name}: compiled readout diverges"
                    )
                elif workload.readout(fast) != workload.reference:
                    failures.append(
                        f"{wname}/{tech.name}: readout != host reference"
                    )
        print(
            f"byte-identity: {expected_runs} campaign runs compared "
            f"across {len(ALL_TECHNOLOGIES)} technologies"
        )

        # 2b. Byte-identity: the fused ProfileRun on the Fig 9 loop.
        from repro.harvest import HarvestingConfig, ProfileRun
        from repro.ml.benchmarks import SVM_ADULT

        profile = SVM_ADULT.profile(cost)
        fast_b = ProfileRun(
            profile, cost, HarvestingConfig.paper(MODERN_STT, 100e-6)
        ).run()
        compilejit.set_enabled(False)
        ref_b = ProfileRun(
            profile, cost, HarvestingConfig.paper(MODERN_STT, 100e-6)
        ).run()
        compilejit.set_enabled(True)
        if fast_b != ref_b:
            failures.append(
                "fused ProfileRun breakdown diverges from the scalar referee"
            )
        else:
            print("byte-identity: fused ProfileRun == scalar referee")

        # 3. The compiled path actually ran (no silent mass fallback).
        stats = compilejit.stats_snapshot()
        took = stats["compiled_runs"] - before
        if took < expected_runs + 1:  # +1 for the fused ProfileRun
            failures.append(
                f"compiled executor took only {took} of "
                f"{expected_runs + 1} eligible runs "
                f"(stats: {stats})"
            )
        else:
            print(f"compiled-path stats: {stats}")

        # 4. Bench floor: the PR's >= 10x interpreter speedup.
        from repro.perf.bench import bench_compiled_step_instruction

        result = bench_compiled_step_instruction(quick=True)
        if result.speedup < 10.0:
            failures.append(
                f"compiled_step_instruction speedup {result.speedup:.2f}x "
                "below the 10x floor"
            )
        else:
            print(
                f"bench floor: compiled_step_instruction "
                f"{result.speedup:.1f}x >= 10x"
            )
    finally:
        compilejit.set_enabled(was_enabled)

    if failures:
        print("\ncompiled-smoke FAILED:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print("\ncompiled-smoke OK")
    return 0


def main() -> int:
    return run_smoke()


if __name__ == "__main__":
    sys.exit(main())

"""Compiled-plan executors: continuous power and intermittent windows.

Both executors reproduce the scalar microstep interpreter's ledger
arithmetic bit for bit.  The key identity: for IEEE-754 doubles,

    np.add.accumulate(np.concatenate(([c0], vals)))[-1]

equals the sequential loop ``c = c0; for v in vals: c += v`` exactly
(same operation order, same rounding), and ``x += 0.0`` is the
identity for every non-negative float — so charges whose energy (or
latency) term is zero can be dropped from the chains without changing
a single bit.  Static energies in the chains were computed through the
very same cost-model methods the interpreter calls; dynamic logic
energies are produced by the same kernel-table gathers `Tile.logic_op`
performs, in the same dtype and reduction order.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.compilejit.plan import (
    K_ACT,
    K_HALT,
    K_L0,
    K_L1A,
    K_L1C,
    K_L1P,
    K_L1S,
    K_LN,
    K_PRESET,
    K_READ,
    K_WRITE,
    CompiledPlan,
    plan_for_mouse,
)
from repro.core.controller import InstructionBudgetExceeded, Phase, _NONE
from repro.isa.instruction import decode_cached


def _acc(start: float, vals: np.ndarray) -> float:
    """Bit-exact equivalent of ``c = start; for v in vals: c += v``."""
    if vals.size == 0:
        return start
    arr = np.empty(vals.size + 1, dtype=np.float64)
    arr[0] = start
    arr[1:] = vals
    return float(np.add.accumulate(arr)[-1])


def _cycle_chain(plan: CompiledPlan, n: int) -> np.ndarray:
    cache = getattr(plan, "_cyc_cache", None)
    if cache is None:
        cache = plan._cyc_cache = {}
    arr = cache.get(n)
    if arr is None:
        arr = cache[n] = np.full(n, plan.cycle, dtype=np.float64)
    return arr


# ----------------------------------------------------------------------
# Continuous power
# ----------------------------------------------------------------------


def try_run_continuous(mouse, max_instructions: int) -> bool:
    """Run the loaded program via its compiled plan if eligible.

    Returns False (without touching any state) when the machine or the
    program needs the scalar interpreter: telemetry/fault hooks
    attached, mid-run state, dead replay pending, non-default register
    parity, or an uncompilable program.
    """
    controller = mouse.controller
    ledger = mouse.ledger
    if (
        not controller.powered
        or controller.halted
        or controller.phase is not Phase.FETCH
        or controller._dead_replay
        or controller._faults is not None
        or controller._obs is not None
        or ledger.obs is not None
        or controller.pc.read() != 0
        or controller.pc.parity.value
        or controller.pc._staged
        or controller.sensor_pc.read() != _NONE
    ):
        return False
    prof = controller._prof
    if prof is not None and ledger.prof is not prof:
        return False
    if prof is None and ledger.prof is not None:
        return False
    plan = plan_for_mouse(mouse)
    if plan is None or plan.n_instructions > max_instructions:
        return False
    if plan.use_before_activate and any(
        t._n_active for t in mouse.bank.data_tiles
    ):
        return False
    _run_continuous(mouse, plan, prof)
    from repro import compilejit

    compilejit.STATS["compiled_runs"] += 1
    return True


def _run_continuous(mouse, plan: CompiledPlan, prof) -> None:
    controller = mouse.controller
    bank = mouse.bank
    tiles = bank.data_tiles
    states = [t.state for t in tiles]
    views = [st.view(np.uint8) for st in states]
    cbuf = controller.buffer
    actreg = controller.activate_register
    vals = plan.chg_vals
    share = plan.share
    oms = plan.oms

    # --- semantic pass: array effects + dynamic logic energies --------
    for op in plan.ops:
        k = op[0]
        if k == K_L1S:
            # Contiguous active range: row-slice views (no index mesh).
            # `out[mask] = tgt` without the `!= tgt` pre-filter writes
            # the same final state (the store is idempotent on cells
            # already at the target) and the energy gather below never
            # depends on which cells switched.
            _, slot, ti, rows_t, orow, sl, ws, en, tgt, aterm = op
            vu = views[ti]
            if len(rows_t) == 2:
                n1 = vu[rows_t[0], sl] + vu[rows_t[1], sl]
            elif len(rows_t) == 1:
                n1 = vu[rows_t[0], sl]
            else:
                n1 = vu[rows_t[0], sl] + vu[rows_t[1], sl]
                for r in rows_t[2:]:
                    n1 += vu[r, sl]
            states[ti][orow, sl][ws.take(n1)] = tgt
            arr = float(en.take(n1).sum())
            vals[slot] = arr + (arr * share / oms + aterm)
        elif k == K_PRESET:
            _, _e, sets, value = op
            for ti, row, idx in sets:
                states[ti][row, idx] = value
        elif k == K_L1C:
            # Single active column: pure scalar arithmetic.
            _, slot, ti, rows_t, orow, col, ws, en, tgt, aterm = op
            vu = views[ti]
            n1 = int(vu[rows_t[0], col])
            for r in rows_t[1:]:
                n1 += int(vu[r, col])
            if ws[n1]:
                states[ti][orow, col] = tgt
            arr = float(en[n1])
            vals[slot] = arr + (arr * share / oms + aterm)
        elif k == K_L1P:
            _, slot, ti, mesh, aidx, orow, ws, en, tgt, aterm = op
            st = states[ti]
            n1 = st[mesh].sum(axis=0)
            out = st[orow]
            changed = ws.take(n1) & (out[aidx] != tgt)
            if changed.any():
                out[aidx[changed]] = tgt
            arr = float(en.take(n1).sum())
            vals[slot] = arr + (arr * share / oms + aterm)
        elif k == K_L1A:
            _, slot, ti, rows_t, orow, ws, en, tgt, aterm = op
            st = states[ti]
            v = st.view(np.uint8)
            if len(rows_t) == 1:
                acc = v[rows_t[0]].copy()
            else:
                acc = v[rows_t[0]] + v[rows_t[1]]
                for r in rows_t[2:]:
                    acc += v[r]
            n1 = acc.astype(np.intp)
            out = st[orow]
            changed = ws.take(n1) & (out != tgt)
            if changed.any():
                out[changed] = tgt
            arr = float(en.take(n1).sum())
            vals[slot] = arr + (arr * share / oms + aterm)
        elif k == K_READ:
            cbuf[:] = states[op[2]][op[3]]
        elif k == K_WRITE:
            _, _e, tis, row = op
            for ti in tis:
                states[ti][row] = cbuf
        elif k == K_ACT:
            for ti, bulk, cols_t in op[3]:
                if bulk:
                    tiles[ti].activate_column_range(*cols_t)
                else:
                    tiles[ti].activate_columns(cols_t)
            actreg.stage(op[2])
            actreg.commit()
        elif k == K_LN:
            _, slot, subs, aterm = op
            arr = 0.0
            for s in subs:
                st = states[s[1]]
                if s[0]:
                    _p, _ti, mesh, aidx, orow, ws, en, tgt = s
                    n1 = st[mesh].sum(axis=0)
                    out = st[orow]
                    changed = ws.take(n1) & (out[aidx] != tgt)
                    if changed.any():
                        out[aidx[changed]] = tgt
                else:
                    _p, _ti, rows_t, orow, ws, en, tgt = s
                    v = st.view(np.uint8)
                    if len(rows_t) == 1:
                        n1a = v[rows_t[0]].copy()
                    else:
                        n1a = v[rows_t[0]] + v[rows_t[1]]
                        for r in rows_t[2:]:
                            n1a += v[r]
                    n1 = n1a.astype(np.intp)
                    out = st[orow]
                    changed = ws.take(n1) & (out != tgt)
                    if changed.any():
                        out[changed] = tgt
                arr += float(en.take(n1).sum())
            vals[slot] = arr + (arr * share / oms + aterm)
        # K_HALT / K_L0: no array work

    # --- accounting: reduce the charge table -------------------------
    n = plan.n_instructions
    b = mouse.ledger.breakdown
    b.compute_energy = _acc(b.compute_energy, vals[plan.ce_idx])
    b.compute_latency = _acc(b.compute_latency, _cycle_chain(plan, n))
    b.backup_energy = _acc(b.backup_energy, vals[plan.be_idx])
    b.instructions += n
    if prof is not None:
        _apply_prof(plan, prof, vals)

    # --- final architectural state ------------------------------------
    k = plan.n_commits
    pc = controller.pc
    if k:
        if k & 1:
            pc._values = [k - 1, k]
            pc.parity.set(True)
        else:
            pc._values = [k, k - 1]
            pc.parity.set(False)
        pc._staged = False
    controller.halted = True
    controller.phase = Phase.FETCH
    controller._word = plan.halt_word
    controller._instr = decode_cached(plan.halt_word)
    controller._executed_uncommitted = False


def _apply_prof(plan: CompiledPlan, prof, vals: np.ndarray) -> None:
    """Replay the run's charge stream into the profiler tree.

    Ancestor nodes above the program's base frame see every charge;
    within the program, each scope node sees exactly the charges whose
    pc lies in its subtree, in pc order — the same order the scalar
    controller's per-FETCH ``set_scope`` walk produces.
    """
    program = plan.program
    table = prof.index_program(program, prefix=(program.name,))
    per_sid = plan.prof_tables()
    n = plan.n_instructions
    stats = prof._stats
    base = table[0]
    for nid in prof._chains[base][:-1]:
        st = stats[nid]
        st.compute_energy = _acc(st.compute_energy, vals[plan.ce_idx])
        st.compute_latency = _acc(st.compute_latency, _cycle_chain(plan, n))
        st.backup_energy = _acc(st.backup_energy, vals[plan.be_idx])
        st.instructions += n
    for sid, (ce_ix, be_ix, n_pcs, leaf_ix, n_leaf) in per_sid.items():
        if n_pcs == 0:
            continue
        nid = table[sid]
        st = stats[nid]
        st.compute_energy = _acc(st.compute_energy, vals[ce_ix])
        st.compute_latency = _acc(st.compute_latency, _cycle_chain(plan, n_pcs))
        st.backup_energy = _acc(st.backup_energy, vals[be_ix])
        st.instructions += n_pcs
        if n_leaf:
            prof._self_energy[nid] = _acc(prof._self_energy[nid], vals[leaf_ix])
            prof._self_latency[nid] = _acc(
                prof._self_latency[nid], _cycle_chain(plan, n_leaf)
            )
    prof.set_scope(table[program.scope_ids[n - 1]])


# ----------------------------------------------------------------------
# Intermittent power (fused window loop)
# ----------------------------------------------------------------------


def intermittent_eligible(run, obs, checkpointer) -> Optional[CompiledPlan]:
    """The plan to use for a fused intermittent run, or None."""
    controller = run.mouse.controller
    ledger = run.mouse.ledger
    if (
        obs is not None
        or checkpointer is not None
        or controller._obs is not None
        or controller._prof is not None
        or controller._faults is not None
        or ledger.obs is not None
        or ledger.prof is not None
        or not controller.powered
        or controller.halted
        or controller.phase is not Phase.FETCH
        or controller.sensor_pc.read() != _NONE
    ):
        return None
    # The fused loop inlines *ideal* capacitor arithmetic; a leaky/ESR
    # buffer must run the scalar engine, which prices the losses.
    if not run.config.buffer.is_ideal:
        return None
    plan = plan_for_mouse(run.mouse)
    if plan is None or not plan.replay_stable or plan.use_before_activate:
        return None
    pc = controller.pc.read()
    if pc is None or not 0 <= pc < plan.n_instructions:
        return None
    return plan


def run_intermittent_fused(run, plan: CompiledPlan, max_instructions: int):
    """The IntermittentRun while-loop, fused per instruction.

    Replays the interpreter's exact per-microstep buffer arithmetic —
    including the ``draw_energy(0.0)`` square-root round-trips at
    DECODE and PC_STAGE — and hands outages to the *real*
    ``power_off`` / ``_charge_until_ready`` / ``power_on`` methods, so
    restore/charging accounting, activation re-issue, and the dual-PC
    protocol are the referee's own code.  One instruction is applied at
    a time: speculating across an outage boundary is unsound (the PR 8
    re-execution analysis refuted window-level replay for programs with
    WAR hazards, and energy arrival decides where the window ends).
    """
    from repro import compilejit

    mouse = run.mouse
    controller = mouse.controller
    ledger = mouse.ledger
    b = ledger.breakdown
    buffer = run.config.buffer
    source = run.config.source
    bank = mouse.bank
    tiles = bank.data_tiles
    states = [t.state for t in tiles]
    views = [st.view(np.uint8) for st in states]
    cbuf = controller.buffer
    pcreg = controller.pc
    actreg = controller.activate_register

    ops = plan.ops
    words = plan.words
    cycle = plan.cycle
    fetch_e = plan.fetch_e
    backup_e = plan.backup_e
    act_backup_e = plan.act_backup_e
    share = plan.share
    oms = plan.oms
    cap = buffer.capacitance
    hc = 0.5 * cap
    voff_eps = buffer.v_off + 1e-15
    source_energy = source.energy

    # Locals mirrored from the ledger breakdown / run cursor; written
    # back around every interpreter call (outage path, exceptions) and
    # at the end.
    ce = b.compute_energy
    cl = b.compute_latency
    be = b.backup_energy
    de = b.dead_energy
    dl = b.dead_latency
    re_ = b.restore_energy  # read-only here; power paths update it
    ninstr = b.instructions
    v = buffer.voltage
    t = run.time
    executed = run.executed
    commits_w = run._commits_in_window
    drawn_w = run._drawn_in_window
    dead = controller._dead_replay
    # _word lives FETCH..COMMIT, _instr lives DECODE..COMMIT; power_off
    # clears both.  Mirror the lifecycle so a NonTermination /
    # budget-exceeded raise leaves the same machine state behind.
    word = controller._word
    instr = controller._instr

    def flush(phase: Phase, eu: bool) -> None:
        b.compute_energy = ce
        b.compute_latency = cl
        b.backup_energy = be
        b.dead_energy = de
        b.dead_latency = dl
        b.instructions = ninstr
        buffer.voltage = v
        run.time = t
        run.executed = executed
        run._commits_in_window = commits_w
        run._drawn_in_window = drawn_w
        controller._dead_replay = dead
        controller._executed_uncommitted = eu
        controller.phase = phase
        controller._word = word
        controller._instr = instr

    def outage(phase: Phase, eu: bool) -> None:
        nonlocal ce, cl, be, de, dl, re_, ninstr, v, t
        nonlocal executed, commits_w, drawn_w, dead, word, instr
        flush(phase, eu)
        if commits_w == 0:
            pc_now = pcreg.read()
            if pc_now == run._stalled_pc:
                position = trace_position_of(source, t)
                where = f" ({position})" if position is not None else ""
                raise NonTerminationError(
                    f"no forward progress: the instruction at pc "
                    f"{pc_now} drew {drawn_w:.3e} J without "
                    f"committing in two consecutive capacitor "
                    f"windows ({buffer.window_energy:.3e} J usable) "
                    "— reduce the active-column parallelism or "
                    f"enlarge the buffer{where}",
                    breakdown=b,
                    instruction_energy=drawn_w,
                    trace_position=position,
                )
            run._stalled_pc = pc_now
        else:
            run._stalled_pc = None
        controller.power_off()
        run._charge_until_ready()
        controller.power_on()
        run._commits_in_window = 0
        run._drawn_in_window = 0.0
        # Reload: the power path charged RESTORE/CHARGING through the
        # real ledger and moved time/voltage.
        ce = b.compute_energy
        cl = b.compute_latency
        be = b.backup_energy
        de = b.dead_energy
        dl = b.dead_latency
        re_ = b.restore_energy
        ninstr = b.instructions
        v = buffer.voltage
        t = run.time
        commits_w = 0
        drawn_w = 0.0
        dead = controller._dead_replay
        word = None  # power_off cleared them
        instr = None

    from repro.harvest.intermittent import (
        NonTerminationError,
        trace_position_of,
    )

    while True:
        if executed >= max_instructions:
            flush(Phase.FETCH, False)
            raise InstructionBudgetExceeded(
                f"instruction budget exhausted: program did not halt "
                f"within {max_instructions} instructions"
            )
        pc = pcreg.read()
        op = ops[pc]
        k = op[0]

        # ---- FETCH: charge fetch energy, draw it ----
        # The scalar loop draws `total_energy_after - total_energy_before`
        # where total_energy is the rounded left-associated sum
        # ((ce + be) + de) + re — NOT the raw charge value.  The delta
        # differs from the charge by ulps, so replicate it exactly.
        word = words[pc]
        te = ce + be + de + re_
        if dead:
            de += fetch_e
        else:
            ce += fetch_e
        consumed = ce + be + de + re_ - te
        tot = max(0.0, hc * v * v - consumed)
        v = (2.0 * tot / cap) ** 0.5
        drawn_w += consumed
        if v <= voff_eps:
            outage(Phase.DECODE, False)
            continue

        # ---- DECODE: zero draw (square-root round-trip) ----
        instr = decode_cached(word)
        v = (2.0 * (hc * v * v) / cap) ** 0.5
        if v <= voff_eps:
            outage(Phase.EXECUTE, False)
            continue

        # ---- EXECUTE ----
        if k == K_HALT:
            if dead:
                dl += cycle
            else:
                cl += cycle
            ninstr += 1
            executed += 1
            commits_w += 1
            harvested = source_energy(t, cycle)
            t += cycle
            v = (2.0 * (hc * v * v + harvested) / cap) ** 0.5
            v = (2.0 * (hc * v * v) / cap) ** 0.5
            break

        is_act = k == K_ACT
        if k == K_L1S:
            _, slot, ti, rows_t, orow, sl, ws, en, tgt, aterm = op
            vu = views[ti]
            if len(rows_t) == 2:
                n1 = vu[rows_t[0], sl] + vu[rows_t[1], sl]
            elif len(rows_t) == 1:
                n1 = vu[rows_t[0], sl]
            else:
                n1 = vu[rows_t[0], sl] + vu[rows_t[1], sl]
                for r in rows_t[2:]:
                    n1 += vu[r, sl]
            states[ti][orow, sl][ws.take(n1)] = tgt
            arr = float(en.take(n1).sum())
            e_exec = arr + (arr * share / oms + aterm)
        elif k == K_L1C:
            _, slot, ti, rows_t, orow, col, ws, en, tgt, aterm = op
            vu = views[ti]
            n1 = int(vu[rows_t[0], col])
            for r in rows_t[1:]:
                n1 += int(vu[r, col])
            if ws[n1]:
                states[ti][orow, col] = tgt
            arr = float(en[n1])
            e_exec = arr + (arr * share / oms + aterm)
        elif k == K_L1P:
            _, slot, ti, mesh, aidx, orow, ws, en, tgt, aterm = op
            st = states[ti]
            n1 = st[mesh].sum(axis=0)
            out = st[orow]
            changed = ws.take(n1) & (out[aidx] != tgt)
            if changed.any():
                out[aidx[changed]] = tgt
            arr = float(en.take(n1).sum())
            e_exec = arr + (arr * share / oms + aterm)
        elif k == K_L1A:
            _, slot, ti, rows_t, orow, ws, en, tgt, aterm = op
            st = states[ti]
            vu = st.view(np.uint8)
            if len(rows_t) == 1:
                acc = vu[rows_t[0]].copy()
            else:
                acc = vu[rows_t[0]] + vu[rows_t[1]]
                for r in rows_t[2:]:
                    acc += vu[r]
            n1 = acc.astype(np.intp)
            out = st[orow]
            changed = ws.take(n1) & (out != tgt)
            if changed.any():
                out[changed] = tgt
            arr = float(en.take(n1).sum())
            e_exec = arr + (arr * share / oms + aterm)
        elif k == K_PRESET:
            _, e_exec, sets, value = op
            for ti, row, idx in sets:
                states[ti][row, idx] = value
        elif k == K_READ:
            e_exec = op[1]
            cbuf[:] = states[op[2]][op[3]]
        elif k == K_WRITE:
            _, e_exec, tis, row = op
            for ti in tis:
                states[ti][row] = cbuf
        elif k == K_ACT:
            e_exec = op[1]
            for ti, bulk, cols_t in op[3]:
                if bulk:
                    tiles[ti].activate_column_range(*cols_t)
                else:
                    tiles[ti].activate_columns(cols_t)
            actreg.stage(op[2])
            actreg.commit()
        elif k == K_LN:
            _, slot, subs, aterm = op
            arr = 0.0
            for s in subs:
                st = states[s[1]]
                if s[0]:
                    _p, _ti, mesh, aidx, orow, ws, en, tgt = s
                    n1 = st[mesh].sum(axis=0)
                    out = st[orow]
                    changed = ws.take(n1) & (out[aidx] != tgt)
                    if changed.any():
                        out[aidx[changed]] = tgt
                else:
                    _p, _ti, rows_t, orow, ws, en, tgt = s
                    vu = st.view(np.uint8)
                    if len(rows_t) == 1:
                        n1a = vu[rows_t[0]].copy()
                    else:
                        n1a = vu[rows_t[0]] + vu[rows_t[1]]
                        for r in rows_t[2:]:
                            n1a += vu[r]
                    n1 = n1a.astype(np.intp)
                    out = st[orow]
                    changed = ws.take(n1) & (out != tgt)
                    if changed.any():
                        out[changed] = tgt
                arr += float(en.take(n1).sum())
            e_exec = arr + (arr * share / oms + aterm)
        else:  # K_L0
            e_exec = op[1]

        te = ce + be + de + re_
        if dead:
            de += e_exec
        else:
            ce += e_exec
        if is_act:
            be += act_backup_e
        consumed = ce + be + de + re_ - te
        tot = max(0.0, hc * v * v - consumed)
        v = (2.0 * tot / cap) ** 0.5
        drawn_w += consumed
        if v <= voff_eps:
            outage(Phase.PC_STAGE, True)
            continue

        # ---- PC_STAGE: stage pc+1, zero draw ----
        pcreg.stage(pc + 1)
        v = (2.0 * (hc * v * v) / cap) ** 0.5
        if v <= voff_eps:
            outage(Phase.COMMIT, True)
            continue

        # ---- COMMIT: publish pc, charge backup, count, harvest ----
        pcreg.commit()
        word = None
        instr = None
        te = ce + be + de + re_
        be += backup_e
        consumed = ce + be + de + re_ - te
        if dead:
            dl += cycle
        else:
            cl += cycle
        ninstr += 1
        dead = False
        executed += 1
        commits_w += 1
        harvested = source_energy(t, cycle)
        t += cycle
        v = (2.0 * (hc * v * v + harvested) / cap) ** 0.5
        tot = max(0.0, hc * v * v - consumed)
        v = (2.0 * tot / cap) ** 0.5
        drawn_w += consumed
        if v <= voff_eps:
            outage(Phase.FETCH, False)
            continue

    # HALT: final state (scalar HALT leaves the fetched word in place;
    # `word`/`instr` still hold it, and flush writes them back).
    controller.halted = True
    flush(Phase.FETCH, False)
    compilejit.STATS["compiled_runs"] += 1
    return b

"""Compiled ProfileRun: the aggregate engine's burst loop on locals.

The scalar :class:`~repro.harvest.intermittent.ProfileRun` spends its
time in Python attribute access: every burst calls ``source.energy``,
two buffer methods (each re-deriving stored energy from the voltage),
two ``ledger.charge`` validations and a handful of dataclass field
reads.  For a :class:`~repro.harvest.source.ConstantPowerSource` every
one of those is a closed form over loop locals, so this module runs the
identical float sequence — same expressions, same order, same rounding
— with everything hoisted into locals.  Breakdown, profiler tree,
cursor (``time`` / ``seg_index`` / ``remaining``), buffer voltage and
the NonTermination diagnosis are all bit-identical to the referee.

A profiler, when attached, is driven through its *real*
``set_scope`` / ``record`` / ``count_*`` methods in the exact sequence
the ledger would produce — correctness over speed on that path; the
burst count is small (one per capacitor window), so profiled runs still
win from the hoisted buffer arithmetic.
"""

from __future__ import annotations

from repro.energy.metrics import Category, EnergyLedger


def profile_eligible(run) -> bool:
    """A ProfileRun the fused loop can reproduce bit-for-bit.

    Requires: no telemetry sink, no host checkpointer, not resuming
    mid-run, no adaptive cadence, an ideal buffer, and a constant
    source — either :class:`ConstantPowerSource` or a constant-trace
    :class:`repro.env.TraceSource`, whose ``energy`` /
    ``time_to_harvest`` fast paths are the exact closed forms the loop
    inlines.  A profiler is fine.
    """
    from repro.harvest.source import ConstantPowerSource

    if run.checkpointer is not None or run._resumed:
        return False
    if getattr(run, "adaptive", None) is not None:
        return False
    if not run.config.buffer.is_ideal:
        return False
    source = run.config.source
    if type(source) is not ConstantPowerSource:
        from repro.env.trace import TraceSource

        if not (
            type(source) is TraceSource
            and source.constant_watts is not None
        ):
            return False
    return run._resolve_obs() is None


def _segment_table(profile, period, replayed, h_cycle, key):
    """Per-segment constants, computed once per (period, dead_fraction,
    watts, cycle) and cached on the profile object.

    Every entry evaluates the exact expressions the scalar engine
    evaluates per visit — caching only removes re-evaluation, never
    changes an intermediate, so the burst loop's floats are untouched.
    """
    cache = getattr(profile, "_cjit_segtab", None)
    if cache is None:
        cache = {}
        try:
            object.__setattr__(profile, "_cjit_segtab", cache)
        except (AttributeError, TypeError):
            pass
    table = cache.get(key)
    if table is None:
        table = []
        for seg_index, segment in enumerate(profile.segments):
            seg_e = segment.energy
            backup_per = segment.backup / period
            per_instr = seg_e + backup_per
            label = segment.label or segment.kind or f"segment{seg_index}"
            table.append(
                (
                    segment.count,
                    seg_e,
                    backup_per,
                    per_instr,
                    per_instr - h_cycle,
                    per_instr * replayed,
                    seg_e * replayed,
                    backup_per * replayed,
                    label,
                )
            )
        cache[key] = table
    return table


def run_profile_fused(run):
    from repro import compilejit
    from repro.harvest.intermittent import NonTerminationError

    if run.ledger is None:
        run.ledger = EnergyLedger()
    ledger = run.ledger
    ledger.obs = None
    profile = run.profile
    prof = run.profiler
    if prof is not None:
        ledger.prof = prof
        prof.set_scope(prof.scope_id((profile.name,)))

    buffer = run.config.buffer
    cost = run.cost
    cycle = cost.cycle_time
    watts = run.config.source.watts

    b = ledger.breakdown
    ce = b.compute_energy
    cl = b.compute_latency
    be = b.backup_energy
    de = b.dead_energy
    dl = b.dead_latency
    re_ = b.restore_energy
    rl = b.restore_latency
    chl = b.charging_latency
    ninstr = b.instructions
    nrestart = b.restarts
    v = buffer.voltage
    t = run.time

    cap = buffer.capacitance
    hc = 0.5 * cap
    # Exact expressions from EnergyBuffer._energy_at (left-associated).
    e_off = 0.5 * cap * buffer.v_off * buffer.v_off
    e_on = 0.5 * cap * buffer.v_on * buffer.v_on
    window = e_on - e_off
    voff_eps = buffer.v_off + 1e-15
    restore_e = cost.restore_energy(profile.active_columns)
    restore_l = cost.restore_latency()
    period = run.checkpoint_period
    replayed = run.dead_fraction * ((period - 1) / 2.0 + 1.0)
    h_cycle = watts * cycle

    def flush(seg_index, remaining) -> None:
        b.compute_energy = ce
        b.compute_latency = cl
        b.backup_energy = be
        b.dead_energy = de
        b.dead_latency = dl
        b.restore_energy = re_
        b.restore_latency = rl
        b.charging_latency = chl
        b.instructions = ninstr
        b.restarts = nrestart
        buffer.voltage = v
        run.time = t
        run.seg_index = seg_index
        run.remaining = remaining

    # Initial charge (eligibility excluded resumed runs, so this is
    # unconditional, as in the scalar engine's fresh-run branch).
    needed = e_on - hc * v * v
    wait = needed / watts if needed > 0.0 else 0.0
    v = (2.0 * (hc * v * v + watts * wait) / cap) ** 0.5
    t += wait
    chl += wait
    if prof is not None:
        prof.record(Category.CHARGING, 0.0, wait)

    table = _segment_table(
        profile, period, replayed, h_cycle,
        (period, run.dead_fraction, watts, cycle),
    )
    n_segments = len(table)
    dead_l = cycle * replayed
    seg_index = 0
    for entry in table:
        (
            remaining, seg_e, backup_per, per_instr, net,
            dead_draw, dead_e, dead_be, label,
        ) = entry
        if prof is not None:
            prof.set_scope(prof.scope_id((profile.name, label)))
        # A non-positive net drain means the whole segment is one burst
        # and the shutdown check (remaining > 0) can never fire: run the
        # burst accounting straight-line with burst = remaining.
        if net <= 0.0:
            if remaining > 0:
                burst = remaining
                consumed = burst * per_instr
                bc = burst * cycle
                harvested = watts * bc
                t += bc
                v = (2.0 * (hc * v * v + harvested) / cap) ** 0.5
                tot = hc * v * v - consumed
                if tot < 0.0:
                    tot = 0.0
                v = (2.0 * tot / cap) ** 0.5
                ce += burst * seg_e
                cl += bc
                be += burst * backup_per
                ninstr += burst
                if prof is not None:
                    prof.record(Category.COMPUTE, burst * seg_e, bc)
                    prof.record(Category.BACKUP, burst * backup_per, 0.0)
                    prof.count_instructions(burst)
            seg_index += 1
            continue
        # net > window is loop-invariant: the scalar engine raises on
        # the first burst of the segment, before any state changes.
        if net > window and remaining > 0:
            flush(seg_index, remaining)
            raise NonTerminationError(
                f"{profile.name}: instruction needs "
                f"{net:.3e} J net but the capacitor window "
                f"holds {window:.3e} J — no "
                "forward progress is possible; reduce the "
                "active-column parallelism or enlarge the "
                "buffer",
                breakdown=b,
                instruction_energy=net,
            )
        while remaining > 0:
            headroom = hc * v * v - e_off
            if headroom < 0.0:
                headroom = 0.0
            burst = int(headroom // net)
            if burst < 1:
                burst = 1
            if burst > remaining:
                burst = remaining
            consumed = burst * per_instr
            bc = burst * cycle
            harvested = watts * bc
            t += bc
            v = (2.0 * (hc * v * v + harvested) / cap) ** 0.5
            tot = hc * v * v - consumed
            if tot < 0.0:
                tot = 0.0
            v = (2.0 * tot / cap) ** 0.5
            ce += burst * seg_e
            cl += bc
            be += burst * backup_per
            ninstr += burst
            if prof is not None:
                prof.record(Category.COMPUTE, burst * seg_e, bc)
                prof.record(Category.BACKUP, burst * backup_per, 0.0)
                prof.count_instructions(burst)
            remaining -= burst
            if v <= voff_eps and remaining > 0:
                # restart(): recharge, count, pay restore, harvest over
                # the restore latency, then the dead-replay penalty.
                needed = e_on - hc * v * v
                wait = needed / watts if needed > 0.0 else 0.0
                v = (2.0 * (hc * v * v + watts * wait) / cap) ** 0.5
                t += wait
                chl += wait
                nrestart += 1
                re_ += restore_e
                rl += restore_l
                if prof is not None:
                    prof.record(Category.CHARGING, 0.0, wait)
                    prof.count_restart()
                    prof.record(Category.RESTORE, restore_e, restore_l)
                harvested = watts * restore_l
                t += restore_l
                v = (2.0 * (hc * v * v + harvested) / cap) ** 0.5
                tot = hc * v * v - restore_e
                if tot < 0.0:
                    tot = 0.0
                v = (2.0 * tot / cap) ** 0.5
                harvested = watts * dead_l
                t += dead_l
                v = (2.0 * (hc * v * v + harvested) / cap) ** 0.5
                tot = hc * v * v - dead_draw
                if tot < 0.0:
                    tot = 0.0
                v = (2.0 * tot / cap) ** 0.5
                de += dead_e
                dl += dead_l
                be += dead_be
                if prof is not None:
                    prof.record(Category.DEAD, dead_e, dead_l)
                    prof.record(Category.BACKUP, dead_be, 0.0)
        seg_index += 1

    flush(n_segments, None)
    compilejit.STATS["compiled_runs"] += 1
    return b

"""Compiled batched execution: charge templates + one accumulate.

The scalar :class:`~repro.perf.batched.BatchedMouse` run loop spends
most of its time outside the physics: per-instruction isinstance
dispatch, target-tile list building, cost-model calls, and — dominating
at small batch sizes — four-ish ``(batch,)`` vector ``+=`` ledger
charges per instruction, each paying full NumPy call overhead for 64
floats of work.

Because MOUSE programs are branch-free and column activation is shared
across the batch, the entire *charge sequence* is known at compile
time except for the data-dependent logic energies.  This module walks
the loaded program once and splits it into:

* an **op list** of just the state-mutating work (activates, presets,
  row moves, logic ops with pre-resolved target tiles), and
* three **charge templates** — the exact per-sample sequences of
  compute-energy, compute-latency and backup-energy charges the scalar
  loop would issue, with one slot per logic instruction left open.

The fused run executes the op list (filling logic slots with the
per-sample ``logic_energy_measured`` vectors), then folds each
template with ``np.add.accumulate`` along the charge axis.  accumulate
applies the additions *sequentially per sample*, so the final row is
bit-for-bit the value the scalar loop's ``+=`` chain produces — the
zero-energy commit charges are dropped (``x + 0.0`` is the identity
for the non-negative energies a ledger holds), everything else is the
same floats in the same order.

Compiled plans are cached on the loaded :class:`Program` object (keyed
by device parameters and geometry), so drivers that rebuild a machine
per call — the batch-64 classification benches do — compile once.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.isa.instruction import (
    ActivateColumnsInstruction,
    HaltInstruction,
    LogicInstruction,
    MemoryInstruction,
)

_SENSOR_TILE = 510
_BROADCAST_TILE = 511

_UNSUPPORTED = "unsupported"

# Op codes for the fused batched loop.
B_ACT_RANGE = 0
B_ACT_COLS = 1
B_PRESET = 2
B_READ = 3
B_WRITE = 4
B_LOGIC = 5


class BatchedPlan:
    """One program compiled against a machine geometry.

    ``ops`` mutate state; ``ce_consts`` / ``n_cl`` / ``be_consts``
    replay the ledger.  ``ce_consts`` holds 0.0 in rows that a logic
    instruction fills per-sample at run time (``B_LOGIC`` ops carry
    their row index).
    """

    def __init__(self, ops, ce_consts, n_cl, be_consts, n_instr) -> None:
        self.ops = ops
        self.ce_consts = np.asarray(ce_consts, dtype=np.float64)
        self.n_cl = n_cl
        self.be_consts = np.asarray(be_consts, dtype=np.float64)
        self.n_instr = n_instr


def compile_batched(machine) -> Optional[BatchedPlan]:
    """Compile the machine's loaded program, or None if unsupported.

    Unsupported: sensor-tile traffic (inherently serial), or a preset /
    logic op on a tile with no prior ACTIVATE in the program (its
    active-column count would depend on pre-run machine state).
    """
    instructions = machine._instructions
    if instructions is None:
        return None
    cost = machine.cost
    n_tiles = len(machine.tiles)
    fetch = cost.fetch_energy()
    backup = cost.backup_energy()

    # Statically tracked active-column count per tile; None = unknown.
    active: list[Optional[int]] = [None] * n_tiles

    ops = []
    ce: list[float] = []
    be: list[float] = []
    n_cl = 0
    n_instr = 0

    def targets(address):
        if address == _BROADCAST_TILE:
            return list(range(n_tiles))
        if address == _SENSOR_TILE:
            return None
        return [address]

    for instr in instructions:
        ce.append(fetch)
        n_instr += 1
        if isinstance(instr, HaltInstruction):
            n_cl += 1
            return BatchedPlan(ops, ce, n_cl, be, n_instr)
        if isinstance(instr, ActivateColumnsInstruction):
            tidx = targets(instr.tile)
            if tidx is None:
                return None
            if instr.bulk:
                first, last = instr.columns
                count = last - first + 1
                ops.append((B_ACT_RANGE, tidx, first, last))
            else:
                cols = list(instr.columns)
                count = len(set(cols))
                ops.append((B_ACT_COLS, tidx, cols))
            for t in tidx:
                active[t] = count
            ce.append(cost.activate_energy(instr.column_count))
            be.append(cost.activate_backup_energy())
        elif isinstance(instr, MemoryInstruction):
            tidx = targets(instr.tile)
            if tidx is None:
                return None
            op = instr.op.upper()
            if op == "READ":
                ops.append((B_READ, tidx[0], instr.row))
                ce.append(cost.row_read_energy(machine.cols))
            elif op == "WRITE":
                ops.append((B_WRITE, tidx, instr.row))
                ce.append(cost.row_write_energy(machine.cols) * len(tidx))
            else:
                n_columns = 0
                for t in tidx:
                    if active[t] is None:
                        return None
                    n_columns += active[t]
                ops.append((B_PRESET, tidx, instr.row, op == "PRESET1"))
                ce.append(cost.preset_energy(max(n_columns, 1)))
        elif isinstance(instr, LogicInstruction):
            tidx = targets(instr.tile)
            if tidx is None:
                return None
            for t in tidx:
                if active[t] is None:
                    return None
            ops.append(
                (
                    B_LOGIC,
                    tidx,
                    instr.spec,
                    list(instr.input_rows),
                    instr.output_row,
                    len(ce),
                    instr.spec.n_inputs + 1,
                )
            )
            ce.append(0.0)  # slot: filled per-sample at run time
        else:
            return None
        # COMMIT
        be.append(backup)
        n_cl += 1
    return None  # no HALT reached (load() guarantees one; be safe)


def plan_for_batched(machine) -> Optional[BatchedPlan]:
    """Cached compile keyed on the loaded Program + geometry."""
    from repro import compilejit

    program = getattr(machine, "_loaded_program", None)
    key = (machine.params, len(machine.tiles), machine.rows, machine.cols)
    cache = None
    if program is not None:
        cache = getattr(program, "_cjit_bplans", None)
        if cache is None:
            cache = {}
            try:
                object.__setattr__(program, "_cjit_bplans", cache)
            except (AttributeError, TypeError):
                cache = None
        if cache is not None:
            plan = cache.get(key)
            if plan is _UNSUPPORTED:
                return None
            if plan is not None:
                return plan
    plan = compile_batched(machine)
    if cache is not None:
        cache[key] = plan if plan is not None else _UNSUPPORTED
    if plan is not None:
        compilejit.STATS["plans_compiled"] += 1
    return plan


def _fold(consts, batch, start):
    """Sequential per-sample fold of a constant charge chain."""
    m = np.empty((len(consts) + 1, batch), dtype=np.float64)
    m[0] = start
    m[1:] = np.asarray(consts, dtype=np.float64)[:, None]
    np.add.accumulate(m, axis=0, out=m)
    return m[-1].copy()


def run_batched_fused(machine, plan: BatchedPlan):
    """Execute the plan; ledger bit-identical to the scalar batched loop."""
    from repro import compilejit

    ledger = machine.ledger
    batch = machine.batch
    tiles = machine.tiles
    cost = machine.cost
    buffer = np.zeros((batch, machine.cols), dtype=bool)

    n_ce = len(plan.ce_consts)
    m = np.empty((n_ce + 1, batch), dtype=np.float64)
    m[0] = ledger.compute_energy
    m[1:] = plan.ce_consts[:, None]

    for op in plan.ops:
        k = op[0]
        if k == B_LOGIC:
            _, tidx, spec, rows, orow, slot, n_addr = op
            array_energy = np.zeros(batch, dtype=np.float64)
            for t in tidx:
                array_energy += tiles[t].logic_op(spec, rows, orow)
            m[slot + 1] = cost.logic_energy_measured(array_energy, n_addr)
        elif k == B_PRESET:
            _, tidx, row, value = op
            for t in tidx:
                tiles[t].preset_row(row, value)
        elif k == B_READ:
            buffer[:, :] = tiles[op[1]].read_row(op[2])
        elif k == B_WRITE:
            _, tidx, row = op
            for t in tidx:
                tiles[t].write_row(row, buffer)
        elif k == B_ACT_RANGE:
            _, tidx, first, last = op
            for t in tidx:
                tiles[t].activate_column_range(first, last)
        else:  # B_ACT_COLS
            _, tidx, cols = op
            for t in tidx:
                tiles[t].activate_columns(cols)

    np.add.accumulate(m, axis=0, out=m)
    ledger.compute_energy = m[-1].copy()

    cycle = cost.cycle_time
    ledger.compute_latency = _fold(
        np.full(plan.n_cl, cycle), batch, ledger.compute_latency
    )
    ledger.backup_energy = _fold(plan.be_consts, batch, ledger.backup_energy)
    ledger.instructions += plan.n_instr
    compilejit.STATS["compiled_runs"] += 1
    return ledger


__all__ = [
    "BatchedPlan",
    "compile_batched",
    "plan_for_batched",
    "run_batched_fused",
]

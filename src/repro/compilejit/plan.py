"""AOT compilation of a linted Program into a fused execution plan.

A :class:`CompiledPlan` freezes everything about a straight-line CRAM
program that does not depend on array *data*: per-instruction kernel
tables, precomputed active-column gathers (``np.ix_`` meshes), static
energy terms evaluated through the same cost-model code paths the
interpreter uses, and a flat **charge table** mirroring the exact
per-microstep ledger charges the scalar controller would make.  The
executors in :mod:`repro.compilejit.exec` then replay a whole commit
window with a handful of NumPy passes and reduce the charge table with
``np.add.accumulate`` — which is bit-identical to the interpreter's
sequential ``+=`` chain, so `Breakdown`s match to the last ulp.

Plan construction is **gated by the PR 3 linter**: a program that lints
with errors raises :class:`PlanUnsupported` and the engines silently
stay on the scalar interpreter.  Sensor reads (run-time data arrival)
and fault hooks are likewise unsupported by construction.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.array.bank import BROADCAST_TILE, SENSOR_TILE
from repro.core.program import Program
from repro.energy.model import InstructionCostModel
from repro.isa.instruction import (
    ActivateColumnsInstruction,
    HaltInstruction,
    LogicInstruction,
    MemoryInstruction,
    decode,
    encode,
)
from repro.perf.kernels import electrical_kernel

# Fast-op codes (first element of every op tuple).
K_HALT = 0
K_ACT = 1
K_PRESET = 2
K_READ = 3
K_WRITE = 4
K_L0 = 5  # logic with zero active columns: static energy, no array work
K_L1P = 6  # logic, single tile, partial activation (column gather)
K_L1A = 7  # logic, single tile, all columns active (uint8 row adds)
K_LN = 8  # logic, broadcast across several tiles
K_L1C = 9  # logic, single tile, exactly one active column (scalar path)
K_L1S = 10  # logic, single tile, contiguous active range (slice views)

# Charge-table categories (matching EnergyLedger routing).
_CAT_CE = 0  # Category.COMPUTE energy (fetch + execute)
_CAT_BE = 1  # Category.BACKUP energy (pc checkpoint, activate register)


class PlanUnsupported(Exception):
    """The program cannot be compiled; run it on the interpreter."""


def _act_spec(instr: ActivateColumnsInstruction):
    """Canonical activation state left by one ACTIVATE instruction."""
    if instr.bulk:
        first, last = instr.columns
        return ("range", int(first), int(last))
    return ("set", tuple(sorted(set(int(c) for c in instr.columns))))


def _spec_index(spec) -> np.ndarray:
    """Active-column index array, identical to Tile._refresh_active_index.

    Both `Tile.activate_columns` (bool mask + flatnonzero) and
    `Tile.activate_column_range` yield a sorted, deduplicated intp
    array; we rebuild the same thing from the canonical spec.
    """
    if spec is None:
        return np.empty(0, dtype=np.intp)
    if spec[0] == "range":
        return np.arange(spec[1], spec[2] + 1, dtype=np.intp)
    return np.asarray(spec[1], dtype=np.intp)


def _spec_count(spec) -> int:
    if spec is None:
        return 0
    if spec[0] == "range":
        return spec[2] - spec[1] + 1
    return len(spec[1])


def _spec_slice(spec) -> Optional[slice]:
    """``slice(c0, c1+1)`` when the active set is contiguous, else None.

    Basic (slice) indexing selects exactly the same cells as the sorted
    fancy index but returns *views*, so the executors can gather input
    rows and mask-store the output row without allocating index meshes.
    """
    if spec is None:
        return None
    if spec[0] == "range":
        return slice(spec[1], spec[2] + 1)
    cols = spec[1]
    if cols and cols[-1] - cols[0] + 1 == len(cols):
        return slice(cols[0], cols[-1] + 1)
    return None


def _spec_sel(spec):
    """Preferred selector for preset stores: a slice when contiguous."""
    sl = _spec_slice(spec)
    return sl if sl is not None else _spec_index(spec)


class CompiledPlan:
    """A fused, data-independent execution plan for one program.

    The plan is tied to a (cost model, bank geometry) pair; bind-free by
    design — executors resolve the live tile ``state`` arrays at run
    start, so one plan serves any number of Mouse instances with the
    same technology and shape.
    """

    def __init__(
        self,
        program: Program,
        cost: InstructionCostModel,
        n_data_tiles: int,
        rows: int,
        cols: int,
        lint_warnings: int = 0,
    ) -> None:
        self.program = program
        self.cost = cost
        self.n_data_tiles = n_data_tiles
        self.rows = rows
        self.cols = cols
        self.lint_warnings = lint_warnings

        self.cycle = cost.cycle_time
        self.fetch_e = cost.fetch_energy()
        self.backup_e = cost.backup_energy()
        self.act_backup_e = cost.activate_backup_energy()
        # Inlined `PeripheralModel.with_array_energy` constants; `oms`
        # is precomputed exactly as the interpreter computes it
        # (`1.0 - share`), so the division sees identical bits.
        self.share = cost.peripheral.energy_share
        self.oms = 1.0 - self.share

        self.ops: list[tuple] = []
        self.n_instructions = len(program)
        self.n_commits = max(self.n_instructions - 1, 0)
        self.n_activates = 0
        self.n_logic_dynamic = 0
        self.replay_stable = True
        #: True if any logic/preset executes before an ACTIVATE has
        #: covered its tile: such a plan bakes "zero active columns"
        #: and is only valid when the machine starts with clean latches.
        self.use_before_activate = False

        self._build()
        self._prof_tables: Optional[dict] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _build(self) -> None:
        program, cost = self.program, self.cost
        if not program.halts:
            raise PlanUnsupported("program does not end in HALT")
        n = self.n_instructions
        cols = self.cols

        # Charge table: one row per ledger energy charge the scalar
        # controller would make, in exact interpreter order per pc:
        # fetch(CE) -> exec(CE) -> [activate backup(BE)] -> backup(BE).
        # HALT contributes only its fetch.  Latency is regular (exactly
        # one cycle per pc, at EXECUTE/COMMIT) and handled separately.
        chg_vals: list[float] = []
        chg_pc: list[int] = []
        chg_cat: list[int] = []

        def charge(cat: int, value: float, pc: int) -> int:
            idx = len(chg_vals)
            chg_vals.append(value)
            chg_pc.append(pc)
            chg_cat.append(cat)
            return idx

        # Rolling activation state.  `full` applies every ACTIVATE in
        # order (continuous-power truth); `last_only` models the state
        # after an outage at this point, where power_on re-issues only
        # the most recent ACTIVATE and every other tile's latches are
        # gone.  The plan bakes `full`; if any *use* would differ under
        # `last_only`, intermittent fused execution is unsafe and
        # `replay_stable` goes False (continuous runs stay fine).
        full: list = [None] * self.n_data_tiles
        last_only: list = [None] * self.n_data_tiles
        mesh_cache: dict = {}

        def resolve_tiles(tile: int) -> tuple[int, ...]:
            if tile == BROADCAST_TILE:
                return tuple(range(self.n_data_tiles))
            return (tile,)

        def check_use(tiles: tuple[int, ...]) -> None:
            for t in tiles:
                if full[t] != last_only[t]:
                    self.replay_stable = False
                if full[t] is None:
                    self.use_before_activate = True

        self.activates: list[tuple[int, int]] = []
        for pc, instr in enumerate(program.instructions):
            charge(_CAT_CE, self.fetch_e, pc)

            if isinstance(instr, HaltInstruction):
                if pc != n - 1:
                    raise PlanUnsupported("HALT before the final pc")
                self.ops.append((K_HALT,))
                continue

            if isinstance(instr, ActivateColumnsInstruction):
                tiles = resolve_tiles(instr.tile)
                spec = _act_spec(instr)
                for t in tiles:
                    full[t] = spec
                last_only = [None] * self.n_data_tiles
                for t in tiles:
                    last_only[t] = spec
                word = encode(instr)
                e = cost.activate_energy(instr.column_count)
                acts = tuple(
                    (t, instr.bulk, tuple(int(c) for c in instr.columns))
                    for t in tiles
                )
                self.ops.append((K_ACT, e, word, acts))
                self.activates.append((pc, word))
                self.n_activates += 1
                charge(_CAT_CE, e, pc)
                charge(_CAT_BE, self.act_backup_e, pc)
                charge(_CAT_BE, self.backup_e, pc)
                continue

            if isinstance(instr, MemoryInstruction):
                op = instr.op.upper()
                if op == "READ":
                    if instr.tile == SENSOR_TILE:
                        raise PlanUnsupported("sensor reads are run-time data")
                    e = cost.row_read_energy(cols)
                    self.ops.append((K_READ, e, instr.tile, instr.row))
                elif op == "WRITE":
                    tiles = resolve_tiles(instr.tile)
                    e = cost.row_write_energy(cols) * len(tiles)
                    self.ops.append((K_WRITE, e, tiles, instr.row))
                else:  # PRESET0 / PRESET1
                    tiles = resolve_tiles(instr.tile)
                    check_use(tiles)
                    n_columns = sum(_spec_count(full[t]) for t in tiles)
                    e = cost.preset_energy(max(n_columns, 1))
                    sets = tuple(
                        (t, instr.row, _spec_sel(full[t])) for t in tiles
                    )
                    self.ops.append((K_PRESET, e, sets, op == "PRESET1"))
                charge(_CAT_CE, e, pc)
                charge(_CAT_BE, self.backup_e, pc)
                continue

            if isinstance(instr, LogicInstruction):
                tiles = resolve_tiles(instr.tile)
                check_use(tiles)
                spec = instr.spec
                rows_t = tuple(instr.input_rows)
                orow = instr.output_row
                kern = electrical_kernel(cost.params, spec)
                aterm = (
                    (spec.n_inputs + 1)
                    * cost.peripheral.address_energy
                    * _write_energy(cost.params)
                )
                subs = []
                for t in tiles:
                    n_active = _spec_count(full[t])
                    if n_active == 0:
                        continue
                    if n_active == cols:
                        subs.append(
                            (False, t, rows_t, orow, kern.will_switch,
                             kern.energy, kern.target)
                        )
                    else:
                        aidx = _spec_index(full[t])
                        key = (rows_t, full[t])
                        mesh = mesh_cache.get(key)
                        if mesh is None:
                            mesh = np.ix_(rows_t, aidx)
                            mesh_cache[key] = mesh
                        subs.append(
                            (True, t, mesh, aidx, orow, kern.will_switch,
                             kern.energy, kern.target)
                        )
                if not subs:
                    e = cost.logic_energy_measured(0.0, spec.n_inputs + 1)
                    self.ops.append((K_L0, e))
                    charge(_CAT_CE, e, pc)
                else:
                    self.n_logic_dynamic += 1
                    slot = charge(_CAT_CE, 0.0, pc)
                    if len(subs) == 1:
                        s = subs[0]
                        if s[0]:
                            aidx = s[3]
                            sl = _spec_slice(full[s[1]])
                            if aidx.size == 1:
                                self.ops.append(
                                    (K_L1C, slot, s[1], rows_t, s[4],
                                     int(aidx[0]), s[5], s[6], s[7], aterm)
                                )
                            elif sl is not None:
                                self.ops.append(
                                    (K_L1S, slot, s[1], rows_t, s[4],
                                     sl, s[5], s[6], s[7], aterm)
                                )
                            else:
                                self.ops.append(
                                    (K_L1P, slot, s[1], s[2], s[3], s[4],
                                     s[5], s[6], s[7], aterm)
                                )
                        else:
                            self.ops.append(
                                (K_L1A, slot, s[1], s[2], s[3], s[4],
                                 s[5], s[6], aterm)
                            )
                    else:
                        self.ops.append((K_LN, slot, tuple(subs), aterm))
                charge(_CAT_BE, self.backup_e, pc)
                continue

            raise PlanUnsupported(
                f"unknown instruction type {type(instr).__name__}"
            )

        self.chg_vals = np.asarray(chg_vals, dtype=np.float64)
        self.chg_pc = np.asarray(chg_pc, dtype=np.intp)
        self.chg_cat = np.asarray(chg_cat, dtype=np.int8)
        self.ce_idx = np.flatnonzero(self.chg_cat == _CAT_CE)
        self.be_idx = np.flatnonzero(self.chg_cat == _CAT_BE)
        self.final_activation = list(full)
        self.words = program.words()
        self.halt_word = self.words[-1]

    # ------------------------------------------------------------------
    # Profiler attribution tables (built on first profiled run)
    # ------------------------------------------------------------------

    def prof_tables(self) -> dict:
        """Per-scope gather indices into the charge table.

        For each scope id: the CE / BE charge indices whose pc lies in
        that scope's subtree, the pc count (latency + instruction
        counts), and the charge indices / pc count of the pcs whose
        *leaf* scope it is (self-energy / self-latency).
        """
        if self._prof_tables is not None:
            return self._prof_tables
        table = self.program.scope_table
        scope_ids = self.program.scope_ids
        n_sids = len(table)
        member = np.zeros((n_sids, self.n_instructions), dtype=bool)
        for pc, sid in enumerate(scope_ids):
            s = sid
            while s >= 0:
                member[s, pc] = True
                s = table.parents[s]
        leaf_of_pc = np.asarray(scope_ids, dtype=np.intp)
        ce_pc = self.chg_pc[self.ce_idx]
        be_pc = self.chg_pc[self.be_idx]
        per_sid = {}
        for sid in range(n_sids):
            mask = member[sid]
            leaf_mask = leaf_of_pc == sid
            per_sid[sid] = (
                self.ce_idx[mask[ce_pc]],
                self.be_idx[mask[be_pc]],
                int(mask.sum()),
                self.chg_pc_sorted_idx(leaf_mask),
                int(leaf_mask.sum()),
            )
        self._prof_tables = per_sid
        return per_sid

    def chg_pc_sorted_idx(self, pc_mask: np.ndarray) -> np.ndarray:
        """Charge indices (in table order) whose pc satisfies the mask."""
        return np.flatnonzero(pc_mask[self.chg_pc])

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        return {
            "instructions": self.n_instructions,
            "charges": int(self.chg_vals.size),
            "logic_dynamic": self.n_logic_dynamic,
            "activates": self.n_activates,
            "replay_stable": bool(self.replay_stable),
            "lint_warnings": self.lint_warnings,
        }

    def to_program(self) -> Program:
        """Reconstruct a Program from the plan's internal records.

        Used as translation validation: the PR 8 `EquivalencePass`
        proves the reconstruction symbolically equivalent to the source
        program, so the plan demonstrably captured the instruction
        stream it claims to execute.
        """
        instrs = []
        for pc, op in enumerate(self.ops):
            k = op[0]
            src = self.program.instructions[pc]
            if k == K_HALT:
                instrs.append(HaltInstruction())
            elif k == K_ACT:
                instrs.append(decode(op[2]))
            elif k == K_READ:
                instrs.append(MemoryInstruction("READ", op[2], op[3]))
            elif k == K_WRITE:
                assert isinstance(src, MemoryInstruction)
                instrs.append(MemoryInstruction("WRITE", src.tile, op[2][1]))
            elif k == K_PRESET:
                assert isinstance(src, MemoryInstruction)
                instrs.append(
                    MemoryInstruction(
                        "PRESET1" if op[3] else "PRESET0",
                        src.tile,
                        op[2][0][1] if op[2] else src.row,
                    )
                )
            else:  # logic kinds
                assert isinstance(src, LogicInstruction)
                instrs.append(
                    LogicInstruction(
                        src.gate, src.tile,
                        tuple(src.input_rows), src.output_row,
                    )
                )
        return Program(instrs, name=f"{self.program.name}.plan")


def _write_energy(params) -> float:
    from repro.logic.gates import write_energy

    return write_energy(params)


def compile_program(
    program: Program,
    cost: InstructionCostModel,
    n_data_tiles: int,
    rows: int,
    cols: int,
    lint: bool = True,
) -> CompiledPlan:
    """Compile ``program`` for a bank geometry, gated by the linter.

    Raises :class:`PlanUnsupported` if the program lints with errors or
    contains constructs a plan cannot model (sensor reads, HALT before
    the end).
    """
    lint_warnings = 0
    if lint:
        from repro.lint import LintConfig, lint_program

        report = lint_program(
            program,
            config=LintConfig(n_data_tiles=n_data_tiles, rows=rows, cols=cols),
        )
        if report.n_errors:
            raise PlanUnsupported(
                f"program lints with {report.n_errors} error(s)"
            )
        lint_warnings = len(report.diagnostics) - report.n_errors
    return CompiledPlan(
        program, cost, n_data_tiles, rows, cols, lint_warnings=lint_warnings
    )


_UNSUPPORTED = "unsupported"


def plan_for_mouse(mouse) -> Optional[CompiledPlan]:
    """The cached plan for the program loaded into ``mouse`` (or None).

    Plans are cached on the Program object keyed by (cost model, bank
    geometry), so reloading the same Program into many Mouse instances
    compiles once per technology.  An uncompilable program is cached as
    unsupported so the interpreter fallback costs one dict hit.
    """
    program = mouse._program
    if program is None:
        return None
    bank = mouse.bank
    key = (mouse.cost, len(bank.data_tiles), bank.rows, bank.cols)
    cache = getattr(program, "_cjit_plans", None)
    if cache is None:
        cache = {}
        try:
            program._cjit_plans = cache
        except AttributeError:  # pragma: no cover - Program allows attrs
            return None
    try:
        entry = cache.get(key)
    except TypeError:  # unhashable cost model; skip caching
        return None
    if entry is None:
        from repro import compilejit

        try:
            entry = compile_program(
                program, mouse.cost, len(bank.data_tiles), bank.rows, bank.cols
            )
            compilejit.STATS["plans_compiled"] += 1
        except PlanUnsupported:
            entry = _UNSUPPORTED
        cache[key] = entry
    if entry is _UNSUPPORTED or isinstance(entry, str):
        return None
    return entry

"""Benchmark smoke gate: quick hot-path run, ratio floors, refresh.

    PYTHONPATH=src python -m repro.perf.smoke [--out PATH] [--no-refresh]

Runs the hot-path microbenchmarks in quick mode (every benchmark still
cross-checks the fast path against its scalar/serial referee before
timing anything) and then enforces three gates:

* **speedup floors** — ``logic_op`` must beat the scalar-rebuild
  baseline by >= 5x, the batch-64 classifiers must beat the serial
  loop by >= 10x, and the compiled-plan executors must beat the scalar
  interpreter by >= 10x (``compiled_step_instruction``) and >= 5x
  (``compiled_intermittent_replay``), measured in this very run;
* **speedup regression** — if a checked-in ``BENCH_PR9.json`` exists,
  no op's speedup may fall below half its recorded value.  Ratios are
  compared rather than absolute ns/op because both sides of a ratio
  are measured on the same machine in the same run, so the comparison
  is machine-independent; absolute numbers are not;
* **compare diff** — the same two reports go through ``bench
  --compare``'s :func:`repro.perf.bench.compare_reports`, and the
  op-by-op table is printed so an absolute-time regression is visible
  in the smoke output even when the machine-independent gates pass.

On success the quick report refreshes ``BENCH_PR9.json`` so the checked
-in trajectory follows the code.  Exit status 0 means the hot paths are
healthy; it is wired into ``make bench-smoke`` (part of ``make test``).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.perf.bench import (
    SCHEMA,
    compare_reports,
    render,
    render_compare,
    run_bench,
    write_report,
)

REPO_ROOT = Path(__file__).resolve().parents[3]
DEFAULT_REPORT = REPO_ROOT / "BENCH_PR9.json"

#: In-run speedup floors (the PRs' acceptance thresholds).
FLOORS = {
    "logic_op": 5.0,
    "classify_svm_batch64": 10.0,
    "classify_bnn_batch64": 10.0,
    "compiled_step_instruction": 10.0,
    "compiled_intermittent_replay": 5.0,
}

#: A speedup below this fraction of the checked-in value is a regression.
REGRESSION_FRACTION = 0.5


def _load_prior(path: Path) -> dict | None:
    try:
        with open(path, "r", encoding="utf-8") as f:
            prior = json.load(f)
    except (OSError, ValueError):
        return None
    return prior if prior.get("schema") == SCHEMA else None


def run_smoke(report_path: Path = DEFAULT_REPORT, refresh: bool = True) -> int:
    prior = _load_prior(report_path)
    report = run_bench(quick=True)
    print(render(report))

    speedups = {r["op"]: r.get("speedup") for r in report["results"]}
    failures: list[str] = []
    for op, floor in FLOORS.items():
        speedup = speedups.get(op)
        if speedup is None:
            failures.append(f"{op}: no speedup measured (missing benchmark?)")
        elif speedup < floor:
            failures.append(f"{op}: speedup {speedup:.2f}x below floor {floor}x")
    if prior is not None:
        comparison = compare_reports(prior, report)
        print()
        print(render_compare(comparison))
        for entry in comparison["ops"]:
            old = entry.get("old_speedup")
            new = entry.get("new_speedup")
            if old is None or new is None:
                continue
            if new < old * REGRESSION_FRACTION:
                failures.append(
                    f"{entry['op']}: speedup regressed more than "
                    f"{1 / REGRESSION_FRACTION:.0f}x "
                    f"({old:.2f}x -> {new:.2f}x vs {report_path.name})"
                )

    if failures:
        print("\nbench-smoke FAILED:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    if refresh:
        write_report(report, str(report_path))
        print(f"\nbench-smoke OK; refreshed {report_path}")
    else:
        print("\nbench-smoke OK")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default=str(DEFAULT_REPORT),
        metavar="PATH",
        help="benchmark report to regress against and refresh",
    )
    parser.add_argument(
        "--no-refresh",
        action="store_true",
        help="gate only; leave the checked-in report untouched",
    )
    args = parser.parse_args(argv)
    return run_smoke(Path(args.out), refresh=not args.no_refresh)


if __name__ == "__main__":
    sys.exit(main())

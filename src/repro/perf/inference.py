"""Batched classification drivers for the compiled classifiers.

Each driver pairs a *batched* path (one :class:`BatchedMouse` pass over
the shared instruction stream, all samples in lock-step) with the
*serial reference* path it must match bit-for-bit (the plain Python
loop: per sample ``set_input`` → ``reset_for_rerun`` → ``run`` on the
scalar :class:`~repro.core.accelerator.Mouse`).  Both return the same
:class:`BatchResult`; the equivalence tests assert equality of every
prediction and every per-sample :class:`Breakdown` field, and the bench
harness times the two paths against each other in the same run.

The serial loop's per-sample ledgers are well-defined independent of
sample order because compiled programs are preset-disciplined (the lint
layer's PRE rules): every row a gate reads was preset or written
earlier in the *same* run, so sample ``i``'s energy depends only on
sample ``i``'s input — which is exactly what lets the batched engine
start every sample from a fresh zeroed tensor and still reproduce the
loop's ledgers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.compile.classifier import (
    CompiledBnnOutput,
    CompiledMulticlassSvm,
    CompiledSvm,
)
from repro.core.accelerator import Mouse
from repro.devices.parameters import DeviceParameters, MODERN_STT
from repro.energy.metrics import Breakdown
from repro.perf.batched import BatchedMouse


@dataclass(frozen=True)
class BatchResult:
    """Per-sample predictions and energy ledgers for one batch."""

    predictions: np.ndarray  # (batch,) int
    breakdowns: tuple[Breakdown, ...]  # one per sample


# ----------------------------------------------------------------------
# Word placement / readout on the batched machine
# ----------------------------------------------------------------------


def _place_word_all(machine: BatchedMouse, tile: int, word, column: int, value: int) -> None:
    """Bake one little-endian word into every sample (shared model data)."""
    masked = value & ((1 << len(word)) - 1)
    for index, bit in enumerate(word):
        machine.tile(tile).set_bit_all(bit.row, column, (masked >> index) & 1)


def _place_word_sample(
    machine: BatchedMouse, tile: int, word, column: int, value: int, sample: int
) -> None:
    masked = value & ((1 << len(word)) - 1)
    for index, bit in enumerate(word):
        machine.tile(tile).set_bit(sample, bit.row, column, (masked >> index) & 1)


def _read_word_samples(
    machine: BatchedMouse, tile: int, word, column: int, signed: bool
) -> np.ndarray:
    """One word per sample, vectorised over the batch: ``(batch,)`` ints."""
    state = machine.tile(tile).state
    value = np.zeros(machine.batch, dtype=np.int64)
    for index, bit in enumerate(word):
        value |= state[:, bit.row, column].astype(np.int64) << index
    if signed:
        sign = 1 << (len(word) - 1)
        value = np.where(value >= sign, value - (sign << 1), value)
    return value


# ----------------------------------------------------------------------
# Binary SVM
# ----------------------------------------------------------------------


def svm_classify_batch(
    compiled: CompiledSvm,
    sv_int: np.ndarray,
    coef_int: np.ndarray,
    offset: int,
    X_int: np.ndarray,
    tech: DeviceParameters = MODERN_STT,
) -> BatchResult:
    """Classify every row of ``X_int`` in one lock-step pass."""
    X_int = np.asarray(X_int)
    machine = BatchedMouse(
        tech, batch=len(X_int), rows=compiled.rows, cols=compiled.n_columns
    )
    for column in range(compiled.n_columns):
        for k, sv in enumerate(sv_int):
            for d, value in enumerate(sv):
                _place_word_all(machine, 0, compiled.sv_words[k][d], column, int(value))
        for k, coef in enumerate(coef_int):
            _place_word_all(machine, 0, compiled.coef_words[k], column, abs(int(coef)))
            machine.tile(0).set_bit_all(
                compiled.coef_signs[k].row, column, int(coef < 0)
            )
        _place_word_all(machine, 0, compiled.offset_word, column, int(offset))
    for sample, x in enumerate(X_int):
        for d, value in enumerate(x):
            _place_word_sample(
                machine, 0, compiled.input_words[d], 0, int(value), sample
            )
    machine.load(compiled.program)
    ledger = machine.run()
    scores = _read_word_samples(machine, 0, compiled.score, 0, signed=True)
    return BatchResult(
        predictions=(scores >= 0).astype(int),
        breakdowns=tuple(ledger.breakdowns()),
    )


def svm_classify_serial(
    compiled: CompiledSvm,
    sv_int: np.ndarray,
    coef_int: np.ndarray,
    offset: int,
    X_int: np.ndarray,
    tech: DeviceParameters = MODERN_STT,
) -> BatchResult:
    """The reference Python loop: one serial run per sample."""
    mouse = compiled.machine(sv_int, coef_int, offset, tech)
    predictions = []
    breakdowns = []
    for x in np.asarray(X_int):
        mouse.reset_for_rerun()
        compiled.set_input(mouse, x)
        mouse.run()
        predictions.append(compiled.classify(mouse))
        breakdowns.append(mouse.ledger.breakdown)
    return BatchResult(
        predictions=np.array(predictions), breakdowns=tuple(breakdowns)
    )


# ----------------------------------------------------------------------
# Multi-class SVM (one-vs-rest, in-array argmax)
# ----------------------------------------------------------------------


def multiclass_svm_predict_batch(
    compiled: CompiledMulticlassSvm,
    sv_int: Sequence[np.ndarray],
    coef_int: Sequence[np.ndarray],
    offsets: Sequence[int],
    X_int: np.ndarray,
    tech: DeviceParameters = MODERN_STT,
) -> BatchResult:
    X_int = np.asarray(X_int)
    machine = BatchedMouse(tech, batch=len(X_int), rows=compiled.rows, cols=1)
    for cls, model in enumerate(compiled.class_models):
        for k, sv in enumerate(sv_int[cls]):
            for d, value in enumerate(sv):
                _place_word_all(machine, 0, model["sv"][k][d], 0, int(value))
        for k, coef in enumerate(coef_int[cls]):
            _place_word_all(machine, 0, model["coef"][k], 0, abs(int(coef)))
            machine.tile(0).set_bit_all(model["sign"][k].row, 0, int(coef < 0))
        _place_word_all(machine, 0, model["offset"], 0, int(offsets[cls]))
    for sample, x in enumerate(X_int):
        for d, value in enumerate(x):
            _place_word_sample(
                machine, 0, compiled.input_words[d], 0, int(value), sample
            )
    machine.load(compiled.program)
    ledger = machine.run()
    indices = _read_word_samples(machine, 0, compiled.index_word, 0, signed=False)
    return BatchResult(
        predictions=indices.astype(int), breakdowns=tuple(ledger.breakdowns())
    )


def multiclass_svm_predict_serial(
    compiled: CompiledMulticlassSvm,
    sv_int: Sequence[np.ndarray],
    coef_int: Sequence[np.ndarray],
    offsets: Sequence[int],
    X_int: np.ndarray,
    tech: DeviceParameters = MODERN_STT,
) -> BatchResult:
    mouse = compiled.machine(sv_int, coef_int, offsets, tech)
    predictions = []
    breakdowns = []
    for x in np.asarray(X_int):
        mouse.reset_for_rerun()
        compiled.set_input(mouse, x)
        mouse.run()
        predictions.append(compiled.predict(mouse))
        breakdowns.append(mouse.ledger.breakdown)
    return BatchResult(
        predictions=np.array(predictions), breakdowns=tuple(breakdowns)
    )


# ----------------------------------------------------------------------
# BNN output layer (popcount scores + in-array argmax)
# ----------------------------------------------------------------------


def bnn_output_predict_batch(
    compiled: CompiledBnnOutput,
    weights01: np.ndarray,
    biases: np.ndarray,
    X_bits: np.ndarray,
    tech: DeviceParameters = MODERN_STT,
) -> BatchResult:
    X_bits = np.asarray(X_bits)
    machine = BatchedMouse(tech, batch=len(X_bits), rows=compiled.rows, cols=1)
    for cls in range(compiled.n_classes):
        for i, bit in enumerate(compiled.weight_words[cls]):
            machine.tile(0).set_bit_all(bit.row, 0, int(weights01[i, cls]))
        _place_word_all(machine, 0, compiled.bias_words[cls], 0, int(biases[cls]))
    for sample, bits in enumerate(X_bits):
        for i, bit in enumerate(compiled.activation_word):
            machine.tile(0).set_bit(sample, bit.row, 0, int(bits[i]))
    machine.load(compiled.program)
    ledger = machine.run()
    indices = _read_word_samples(machine, 0, compiled.index_word, 0, signed=False)
    return BatchResult(
        predictions=indices.astype(int), breakdowns=tuple(ledger.breakdowns())
    )


def bnn_output_predict_serial(
    compiled: CompiledBnnOutput,
    weights01: np.ndarray,
    biases: np.ndarray,
    X_bits: np.ndarray,
    tech: DeviceParameters = MODERN_STT,
) -> BatchResult:
    mouse = compiled.machine(weights01, biases, tech)
    predictions = []
    breakdowns = []
    for bits in np.asarray(X_bits):
        mouse.reset_for_rerun()
        compiled.set_input(mouse, bits)
        mouse.run()
        predictions.append(compiled.predict(mouse))
        breakdowns.append(mouse.ledger.breakdown)
    return BatchResult(
        predictions=np.array(predictions), breakdowns=tuple(breakdowns)
    )


__all__ = [
    "BatchResult",
    "svm_classify_batch",
    "svm_classify_serial",
    "multiclass_svm_predict_batch",
    "multiclass_svm_predict_serial",
    "bnn_output_predict_batch",
    "bnn_output_predict_serial",
]

"""Lock-step batched inference: many samples, one instruction stream.

MOUSE programs are straight-line (the ISA has no branches) and their
control flow is input-independent: every sample of a classification
batch executes exactly the same instruction sequence, differing only in
array *contents*.  The serial simulator therefore spends its time in
per-sample Python microstep overhead, not in physics.  This engine
exploits the structure the paper itself exploits — one shared
instruction stream — by carrying a ``(batch, rows, cols)`` state tensor
through a single pass over the program, vectorising every tile
operation over the batch axis.

Byte-identity contract (the whole point): per-sample array states,
per-sample read-outs, and per-sample energy ledgers are **bit-for-bit
equal** to running each sample alone on the serial
:class:`~repro.core.accelerator.Mouse`.  The engine replicates the
serial controller's exact charge sequence per instruction —

* FETCH     — Compute ``fetch_energy()`` (no latency)
* EXECUTE   — the instruction's energy (ACTIVATE additionally charges
  ``activate_backup_energy()`` to Backup; HALT charges one cycle of
  latency, counts the instruction, and stops without a commit)
* COMMIT    — Backup ``backup_energy()``, then one ``cycle_time`` of
  Compute latency, then the instruction count

— with every accumulation done elementwise on ``(batch,)`` float64
vectors, so each sample sees the identical IEEE addition sequence the
scalar ledger performs.  Data-dependent logic energy goes through the
same frozen kernels (:mod:`repro.perf.kernels`) and the *same*
``InstructionCostModel.logic_energy_measured`` (pure elementwise
arithmetic, so an array input yields each sample's scalar result
exactly).

Scope: continuous power only.  Intermittent execution, fault injection,
and sensor reads are inherently per-sample/per-outage serial semantics
— use the serial machine for those (see ``docs/PERFORMANCE.md``).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

# NOTE: leaf imports only — ``repro.array.tile`` imports
# repro.perf.kernels, which initialises this package, so anything that
# reaches back into repro.array / repro.core at module load would be
# circular.  ``Program`` is imported lazily in :meth:`BatchedMouse.load`.
from repro.array.lines import check_logic_rows
from repro.devices.parameters import DeviceParameters
from repro.energy.metrics import Breakdown
from repro.energy.model import InstructionCostModel
from repro.isa.instruction import (
    ActivateColumnsInstruction,
    HaltInstruction,
    Instruction,
    LogicInstruction,
    MemoryInstruction,
)
from repro.perf.kernels import electrical_kernel

#: Sensor/broadcast tile addresses (mirrors repro.array.bank, which we
#: cannot import here — see the module note above).
_SENSOR_TILE = 510
_BROADCAST_TILE = 511


class BatchedUnsupported(RuntimeError):
    """The batched engine met semantics it cannot vectorise."""


class BatchedLedger:
    """Per-sample energy accounting for a continuous-power batch.

    Holds ``(batch,)`` float64 accumulators for the categories a
    continuous-power run can touch (Compute energy/latency, Backup
    energy).  Every charge is an elementwise ``+=`` of the exact values
    the scalar :class:`~repro.energy.metrics.EnergyLedger` would add to
    each sample, in the same order — float addition is deterministic,
    so sample ``i``'s totals are bit-equal to a serial run of sample
    ``i`` alone.
    """

    def __init__(self, batch: int) -> None:
        if batch < 1:
            raise ValueError("batch must be at least 1")
        self.batch = batch
        self.compute_energy = np.zeros(batch, dtype=np.float64)
        self.backup_energy = np.zeros(batch, dtype=np.float64)
        self.compute_latency = np.zeros(batch, dtype=np.float64)
        self.instructions = 0

    def charge_compute(self, energy, latency: float = 0.0) -> None:
        """Compute charge; ``energy`` is a scalar or a ``(batch,)`` vector."""
        self.compute_energy += energy
        if latency:
            self.compute_latency += latency

    def charge_backup(self, energy: float) -> None:
        self.backup_energy += energy

    def count_instruction(self) -> None:
        self.instructions += 1

    def breakdown(self, sample: int) -> Breakdown:
        """Sample ``i``'s ledger as a standard :class:`Breakdown`."""
        return Breakdown(
            compute_energy=float(self.compute_energy[sample]),
            backup_energy=float(self.backup_energy[sample]),
            compute_latency=float(self.compute_latency[sample]),
            instructions=self.instructions,
        )

    def breakdowns(self) -> list[Breakdown]:
        return [self.breakdown(i) for i in range(self.batch)]


class BatchedTile:
    """One tile replicated over the batch axis: ``(batch, rows, cols)``.

    Column activation is *shared* across the batch (it is set by the
    instruction stream, which is input-independent), so the active-index
    bookkeeping is a single sorted vector, exactly like the serial
    tile's incremental tracking.
    """

    def __init__(
        self, params: DeviceParameters, batch: int, rows: int, cols: int
    ) -> None:
        if rows < 2 or cols < 1:
            raise ValueError("tile needs at least 2 rows and 1 column")
        self.params = params
        self.batch = batch
        self.rows = rows
        self.cols = cols
        self.state = np.zeros((batch, rows, cols), dtype=bool)
        self._active_idx = np.empty(0, dtype=np.intp)
        self._n_active = 0

    # -- activation (shared across the batch) ---------------------------

    def activate_columns(self, columns: Sequence[int]) -> int:
        cols = list(columns)
        for c in cols:
            if not 0 <= c < self.cols:
                raise IndexError(f"column {c} out of range 0..{self.cols - 1}")
        self._active_idx = np.unique(np.asarray(cols, dtype=np.intp))
        self._n_active = len(self._active_idx)
        return len(set(cols))

    def activate_column_range(self, first: int, last: int) -> int:
        if not 0 <= first <= last < self.cols:
            raise IndexError(f"bad column range {first}..{last}")
        self._active_idx = np.arange(first, last + 1, dtype=np.intp)
        self._n_active = last - first + 1
        return self._n_active

    @property
    def n_active(self) -> int:
        return self._n_active

    # -- memory ---------------------------------------------------------

    def read_row(self, row: int) -> np.ndarray:
        """All samples' copies of one row: ``(batch, cols)``."""
        self._check_row(row)
        return self.state[:, row, :].copy()

    def write_row(self, row: int, values: np.ndarray) -> None:
        """Write one row in every sample from a ``(batch, cols)`` buffer."""
        self._check_row(row)
        self.state[:, row, :] = values

    def preset_row(self, row: int, value: bool) -> int:
        self._check_row(row)
        self.state[:, row, self._active_idx] = value
        return self._n_active

    # -- logic ----------------------------------------------------------

    def logic_op(
        self, spec, input_rows: Sequence[int], output_row: int
    ) -> np.ndarray:
        """One gate in every active column of every sample.

        Returns the per-sample array energy, ``(batch,)`` float64 — each
        entry bit-equal to the serial :meth:`Tile.logic_op` energy for
        that sample's state (same kernel tables, same gather, and
        ``sum(axis=1)`` uses the same pairwise reduction per row as a
        1-D ``sum``).
        """
        rows = list(input_rows)
        if len(rows) != spec.n_inputs:
            raise ValueError(
                f"{spec.name} takes {spec.n_inputs} input rows, got {len(rows)}"
            )
        for r in rows + [output_row]:
            self._check_row(r)
        check_logic_rows(rows, output_row)

        if self._n_active == 0:
            return np.zeros(self.batch, dtype=np.float64)

        idx = self._active_idx
        # (batch, n_inputs, n_active) gather, summed over inputs.
        inputs = self.state[np.ix_(np.arange(self.batch), rows, idx)]
        n_ones = inputs.sum(axis=1)  # (batch, n_active)

        kern = electrical_kernel(self.params, spec)
        will_switch = kern.will_switch[n_ones]  # (batch, n_active)

        out = self.state[:, output_row, :]  # view (batch, cols)
        sample_i, col_pos = np.nonzero(will_switch)
        out[sample_i, idx[col_pos]] = kern.target

        return kern.energy[n_ones].sum(axis=1)

    # -- helpers --------------------------------------------------------

    def _check_row(self, row: int) -> None:
        if not 0 <= row < self.rows:
            raise IndexError(f"row {row} out of range 0..{self.rows - 1}")

    def get_bit(self, sample: int, row: int, col: int) -> int:
        return int(self.state[sample, row, col])

    def set_bit(self, sample: int, row: int, col: int, value: int) -> None:
        self.state[sample, row, col] = bool(value)

    def set_bit_all(self, row: int, col: int, value: int) -> None:
        """Bake shared model data into every sample at once."""
        self.state[:, row, col] = bool(value)


class BatchedMouse:
    """A bank of :class:`BatchedTile` driven by one instruction stream.

    The run loop walks the decoded program linearly (the ISA is
    branch-free), replicating the serial five-microstep machine's charge
    sequence per instruction — see the module docstring for the exact
    order.  The transfer buffer is per-sample (``(batch, cols)``), since
    READ contents are data.
    """

    def __init__(
        self,
        params: DeviceParameters,
        batch: int,
        n_data_tiles: int = 1,
        rows: int = 1024,
        cols: int = 1024,
    ) -> None:
        self.params = params
        self.batch = batch
        self.rows = rows
        self.cols = cols
        self.tiles = [
            BatchedTile(params, batch, rows, cols) for _ in range(n_data_tiles)
        ]
        self.cost = InstructionCostModel(params)
        self.ledger = BatchedLedger(batch)
        self._instructions: Optional[list[Instruction]] = None

    def tile(self, index: int) -> BatchedTile:
        return self.tiles[index]

    def _target_tiles(self, address: int) -> list[BatchedTile]:
        if address == _BROADCAST_TILE:
            return list(self.tiles)
        if address == _SENSOR_TILE:
            raise BatchedUnsupported(
                "sensor reads are inherently serial; use the serial machine"
            )
        return [self.tiles[address]]

    def load(self, program) -> None:
        """Validate the program exactly like the serial machine."""
        from repro.core.program import Program

        if not isinstance(program, Program):
            program = Program(list(program))
        program.ensure_halt()
        program.validate(
            n_data_tiles=len(self.tiles), rows=self.rows, cols=self.cols
        )
        self._instructions = list(program.instructions)
        # Anchor for the compiled-plan cache (repro.compilejit.batched);
        # reassigning it on every load invalidates any stale machine plan.
        self._loaded_program = program

    def reset_ledger(self) -> None:
        """Fresh per-sample ledgers (array contents are kept)."""
        self.ledger = BatchedLedger(self.batch)

    # ------------------------------------------------------------------

    def run(self) -> BatchedLedger:
        """Execute the loaded program once for the whole batch."""
        if self._instructions is None:
            raise RuntimeError("no program loaded")
        from repro import compilejit

        if compilejit.enabled():
            from repro.compilejit.batched import (
                plan_for_batched,
                run_batched_fused,
            )

            plan = plan_for_batched(self)
            if plan is not None:
                return run_batched_fused(self, plan)
            compilejit.STATS["fallback_runs"] += 1
        cost = self.cost
        ledger = self.ledger
        fetch = cost.fetch_energy()
        backup = cost.backup_energy()
        cycle = cost.cycle_time
        buffer = np.zeros((self.batch, self.cols), dtype=bool)

        for instr in self._instructions:
            # FETCH (the word itself is known; the energy is not).
            ledger.charge_compute(fetch)
            # EXECUTE
            if isinstance(instr, HaltInstruction):
                ledger.charge_compute(0.0, cycle)
                ledger.count_instruction()
                return ledger
            if isinstance(instr, ActivateColumnsInstruction):
                for tile in self._target_tiles(instr.tile):
                    if instr.bulk:
                        tile.activate_column_range(*instr.columns)
                    else:
                        tile.activate_columns(instr.columns)
                ledger.charge_compute(cost.activate_energy(instr.column_count))
                ledger.charge_backup(cost.activate_backup_energy())
            elif isinstance(instr, MemoryInstruction):
                self._execute_memory(instr, buffer)
            elif isinstance(instr, LogicInstruction):
                spec = instr.spec
                array_energy = np.zeros(self.batch, dtype=np.float64)
                for tile in self._target_tiles(instr.tile):
                    array_energy += tile.logic_op(
                        spec, instr.input_rows, instr.output_row
                    )
                ledger.charge_compute(
                    cost.logic_energy_measured(array_energy, spec.n_inputs + 1)
                )
            else:  # pragma: no cover - validate() admits only the above
                raise TypeError(f"cannot execute {type(instr).__name__}")
            # COMMIT
            ledger.charge_backup(backup)
            ledger.charge_compute(0.0, cycle)
            ledger.count_instruction()
        raise RuntimeError("program ended without HALT")  # pragma: no cover

    def _execute_memory(self, instr: MemoryInstruction, buffer: np.ndarray) -> None:
        op = instr.op.upper()
        cost = self.cost
        if op == "READ":
            tiles = self._target_tiles(instr.tile)
            buffer[:, :] = tiles[0].read_row(instr.row)
            self.ledger.charge_compute(cost.row_read_energy(self.cols))
            return
        if op == "WRITE":
            tiles = self._target_tiles(instr.tile)
            for tile in tiles:
                tile.write_row(instr.row, buffer)
            self.ledger.charge_compute(cost.row_write_energy(self.cols) * len(tiles))
            return
        value = op == "PRESET1"
        n_columns = 0
        for tile in self._target_tiles(instr.tile):
            n_columns += tile.preset_row(instr.row, value)
        self.ledger.charge_compute(cost.preset_energy(max(n_columns, 1)))

    # -- host-side data access (mirrors Mouse.write_value/read_value) ---

    def write_value(
        self, tile: int, row: int, col: int, bits: int, value: int, sample: int
    ) -> None:
        if value < 0 or value >= 1 << bits:
            raise ValueError(f"value {value} does not fit in {bits} bits")
        t = self.tile(tile)
        for b in range(bits):
            t.set_bit(sample, row + 2 * b, col, (value >> b) & 1)

    def read_value(
        self, tile: int, row: int, col: int, bits: int, sample: int
    ) -> int:
        t = self.tile(tile)
        out = 0
        for b in range(bits):
            out |= t.get_bit(sample, row + 2 * b, col) << b
        return out


#: The ISSUE's name for the engine; the run loop lives on the machine.
BatchedRun = BatchedMouse

__all__ = [
    "BatchedLedger",
    "BatchedMouse",
    "BatchedRun",
    "BatchedTile",
    "BatchedUnsupported",
]

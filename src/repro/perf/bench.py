"""Hot-path microbenchmarks with in-run baselines.

Every speedup this module reports is measured *in the same run* as the
fast path it praises: ``logic_op`` is timed against
:func:`repro.perf.baseline.logic_op_reference` (the pre-cache scalar
implementation, kept verbatim as the referee), and the batch-64
classification drivers are timed against the serial per-sample Python
loop from :mod:`repro.perf.inference`.  Absolute ns/op numbers are
machine-dependent; the speedup ratios are not, which is why the smoke
gate (``make bench-smoke``) regresses on ratios.

The report is written as ``BENCH_PR9.json`` (schema ``repro.bench/v1``)
so the trajectory of the hot paths is checked into the repo next to the
code that created it (``BENCH_PR4.json`` is the kept PR-4 snapshot):

    python -m repro bench [--quick] [--out PATH] [--events PATH]

Each benchmark also runs under a ``bench.<op>`` telemetry span and the
run ends by publishing the perf-layer cache counters, so an ``--events``
log shows where the time and the cache hits went.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

SCHEMA = "repro.bench/v1"


@dataclass(frozen=True)
class BenchResult:
    """One timed operation, optionally paired with its in-run baseline."""

    op: str
    config: dict
    reps: int
    ns_per_op: float
    baseline: Optional[str] = None
    baseline_ns_per_op: Optional[float] = None

    @property
    def speedup(self) -> Optional[float]:
        if self.baseline_ns_per_op is None:
            return None
        return self.baseline_ns_per_op / self.ns_per_op

    def to_json_obj(self) -> dict:
        obj = {
            "op": self.op,
            "config": self.config,
            "reps": self.reps,
            "ns_per_op": round(self.ns_per_op, 1),
        }
        if self.baseline is not None:
            obj["baseline"] = self.baseline
            obj["baseline_ns_per_op"] = round(self.baseline_ns_per_op, 1)
            obj["speedup"] = round(self.speedup, 2)
        return obj


def _time_ns(fn, reps: int, warmup: bool = True) -> float:
    """ns per call: the best batch mean over ``reps`` total calls.

    Taking the minimum over a few batches (timeit's strategy) filters
    scheduler noise that would otherwise inflate the measurement — and
    since both sides of every reported speedup go through this same
    path, the ratios stay honest.  Pass ``warmup=False`` when the
    caller already exercised ``fn`` (the correctness cross-checks
    double as warm-up for the slow serial loops).
    """
    if warmup:
        fn()
    n_batches = min(5, reps)
    per_batch = max(1, reps // n_batches)
    best = None
    for _ in range(n_batches):
        start = time.perf_counter_ns()
        for _ in range(per_batch):
            fn()
        mean = (time.perf_counter_ns() - start) / per_batch
        best = mean if best is None else min(best, mean)
    return best


# ----------------------------------------------------------------------
# Micro-ops
# ----------------------------------------------------------------------


def bench_logic_op(quick: bool) -> BenchResult:
    """One MAJ3 gate across 1024 active columns: cached-kernel tile path
    vs the scalar reference that rebuilds its tables every call."""
    from repro.array.tile import Tile
    from repro.devices.parameters import MODERN_STT
    from repro.logic.library import MAJ3
    from repro.perf.baseline import logic_op_reference

    rows, cols = 64, 1024
    rng = np.random.default_rng(0)
    bits = rng.integers(0, 2, size=(3, cols)).astype(bool)

    input_rows, output_row = (0, 2, 4), 11  # even inputs, odd output

    def fresh_tile() -> Tile:
        tile = Tile(MODERN_STT, rows=rows, cols=cols)
        tile.activate_column_range(0, cols - 1)
        for i, row in enumerate(input_rows):
            tile.state[row, :] = bits[i]
        return tile

    fast_tile, ref_tile = fresh_tile(), fresh_tile()
    fast = fast_tile.logic_op(MAJ3, input_rows, output_row)
    ref = logic_op_reference(ref_tile, MAJ3, input_rows, output_row)
    if fast != ref:
        raise AssertionError(f"logic_op disagrees with reference: {fast} != {ref}")

    reps, ref_reps = (200, 50) if quick else (2000, 200)
    ns = _time_ns(lambda: fast_tile.logic_op(MAJ3, input_rows, output_row), reps)
    ref_ns = _time_ns(
        lambda: logic_op_reference(ref_tile, MAJ3, input_rows, output_row), ref_reps
    )
    return BenchResult(
        op="logic_op",
        config={"gate": "MAJ3", "columns": cols, "technology": MODERN_STT.name},
        reps=reps,
        ns_per_op=ns,
        baseline="scalar_rebuild",
        baseline_ns_per_op=ref_ns,
    )


def bench_step_instruction(quick: bool) -> BenchResult:
    """Full controller microstep loop over the adder workload; ns per
    executed instruction (fetch + decode + execute + commit)."""
    from repro.faults.campaign import adder_workload

    workload = adder_workload()
    workload.build().run()  # warm-up: AOT plan compile + import costs
    reps = 3 if quick else 10
    total_ns = 0
    instructions = 0
    for _ in range(reps):
        mouse = workload.build()
        start = time.perf_counter_ns()
        mouse.run()
        total_ns += time.perf_counter_ns() - start
        instructions += mouse.ledger.breakdown.instructions
    return BenchResult(
        op="step_instruction",
        config={"workload": workload.name, "instructions": instructions // reps},
        reps=reps,
        ns_per_op=total_ns / instructions,
    )


def bench_intermittent_replay(quick: bool) -> BenchResult:
    """One harvested execution of the SVM ADULT profile at 100 uW —
    the inner loop of the Figure 9 sweep."""
    from repro.devices.parameters import MODERN_STT
    from repro.energy.model import InstructionCostModel
    from repro.harvest import HarvestingConfig, ProfileRun
    from repro.ml.benchmarks import SVM_ADULT

    cost = InstructionCostModel(MODERN_STT)
    profile = SVM_ADULT.profile(cost)
    config = HarvestingConfig.paper(MODERN_STT, 100e-6)
    reps = 3 if quick else 10
    ns = _time_ns(lambda: ProfileRun(profile, cost, config).run(), reps)
    return BenchResult(
        op="intermittent_replay",
        config={
            "workload": SVM_ADULT.name,
            "power_uw": 100.0,
            "technology": MODERN_STT.name,
        },
        reps=reps,
        ns_per_op=ns,
    )


def bench_trace_replay(quick: bool) -> BenchResult:
    """One harvested SVM ADULT execution under a looping solar trace —
    the inner loop of the environment sweep.  The trace source pays a
    prefix-sum/bisect lookup per charge window where the constant
    source is closed-form, so this row tracks that overhead in ``bench
    --compare`` diffs."""
    from repro.devices.parameters import MODERN_STT
    from repro.energy.model import InstructionCostModel
    from repro.env import solar_diurnal
    from repro.harvest import HarvestingConfig, ProfileRun

    from repro.ml.benchmarks import SVM_ADULT

    cost = InstructionCostModel(MODERN_STT)
    profile = SVM_ADULT.profile(cost)
    trace = solar_diurnal(seed=0, peak_watts=2e-4, floor_watts=4e-5)

    def run_once():
        config = HarvestingConfig.from_trace(MODERN_STT, trace)
        ProfileRun(profile, cost, config).run()

    reps = 3 if quick else 10
    ns = _time_ns(run_once, reps)
    return BenchResult(
        op="trace_replay",
        config={
            "workload": SVM_ADULT.name,
            "trace": trace.name,
            "family": trace.family,
            "technology": MODERN_STT.name,
        },
        reps=reps,
        ns_per_op=ns,
    )


def bench_compiled_step_instruction(quick: bool) -> BenchResult:
    """Adder workload under the AOT-compiled plan executor vs the scalar
    microstep interpreter; ns per executed instruction.  The compiled
    side's ledger is asserted byte-identical to the interpreter's before
    anything is timed."""
    from repro.faults.campaign import adder_workload

    workload = adder_workload()
    fast_mouse = workload.build()
    fast_mouse.run()  # warms the plan cache on the shared Program
    ref_mouse = workload.build()
    ref_mouse.run(compiled=False)
    if fast_mouse.ledger.breakdown != ref_mouse.ledger.breakdown:
        raise AssertionError(
            "compiled plan ledger diverges from the scalar interpreter"
        )

    def per_instruction(reps: int, compiled) -> tuple[float, int]:
        total_ns = 0
        instructions = 0
        for _ in range(reps):
            mouse = workload.build()
            start = time.perf_counter_ns()
            mouse.run(compiled=compiled)
            total_ns += time.perf_counter_ns() - start
            instructions += mouse.ledger.breakdown.instructions
        return total_ns / instructions, instructions // reps

    reps, ref_reps = (10, 3) if quick else (50, 10)
    ns, n_instr = per_instruction(reps, None)
    ref_ns, _ = per_instruction(ref_reps, False)
    return BenchResult(
        op="compiled_step_instruction",
        config={"workload": workload.name, "instructions": n_instr},
        reps=reps,
        ns_per_op=ns,
        baseline="scalar_interpreter",
        baseline_ns_per_op=ref_ns,
    )


def bench_compiled_intermittent_replay(quick: bool) -> BenchResult:
    """The Figure 9 inner loop under the fused ProfileRun engine vs the
    scalar referee loop.  Each side keeps its own capacitor so the
    charge trajectories stay independent; the byte-identity cross-check
    runs on fresh buffers before timing."""
    from repro import compilejit
    from repro.devices.parameters import MODERN_STT
    from repro.energy.model import InstructionCostModel
    from repro.harvest import HarvestingConfig, ProfileRun
    from repro.ml.benchmarks import SVM_ADULT

    cost = InstructionCostModel(MODERN_STT)
    profile = SVM_ADULT.profile(cost)

    was_enabled = compilejit.enabled()
    try:
        compilejit.set_enabled(True)
        fast_b = ProfileRun(
            profile, cost, HarvestingConfig.paper(MODERN_STT, 100e-6)
        ).run()
        compilejit.set_enabled(False)
        ref_b = ProfileRun(
            profile, cost, HarvestingConfig.paper(MODERN_STT, 100e-6)
        ).run()
        if fast_b != ref_b:
            raise AssertionError(
                "fused ProfileRun breakdown diverges from the scalar referee"
            )

        fast_config = HarvestingConfig.paper(MODERN_STT, 100e-6)
        ref_config = HarvestingConfig.paper(MODERN_STT, 100e-6)

        def fast_run():
            compilejit.set_enabled(True)
            ProfileRun(profile, cost, fast_config).run()

        def ref_run():
            compilejit.set_enabled(False)
            ProfileRun(profile, cost, ref_config).run()

        reps, ref_reps = (10, 3) if quick else (50, 10)
        ns = _time_ns(fast_run, reps)
        ref_ns = _time_ns(ref_run, ref_reps)
    finally:
        compilejit.set_enabled(was_enabled)
    return BenchResult(
        op="compiled_intermittent_replay",
        config={
            "workload": SVM_ADULT.name,
            "power_uw": 100.0,
            "technology": MODERN_STT.name,
        },
        reps=reps,
        ns_per_op=ns,
        baseline="scalar_referee",
        baseline_ns_per_op=ref_ns,
    )


# ----------------------------------------------------------------------
# Batch-64 classification: lock-step engine vs serial Python loop
# ----------------------------------------------------------------------

_BATCH = 64


def bench_classify_svm(quick: bool) -> BenchResult:
    """Batch-64 SVM decisions: one lock-step pass vs 64 serial runs."""
    from repro.compile.classifier import compile_svm_decision
    from repro.perf.inference import svm_classify_batch, svm_classify_serial

    compiled = compile_svm_decision(
        n_support=1,
        dimensions=2,
        input_bits=3,
        sv_bits=3,
        coef_bits=3,
        offset_bits=3,
        rows=1024,
        n_columns=1,
    )
    rng = np.random.default_rng(1)
    sv_int = np.array([[1, 2]])
    coef_int = np.array([2])
    offset = 1
    X = rng.integers(0, 8, size=(_BATCH, 2))

    batch = svm_classify_batch(compiled, sv_int, coef_int, offset, X)
    serial = svm_classify_serial(compiled, sv_int, coef_int, offset, X)
    if not np.array_equal(batch.predictions, serial.predictions):
        raise AssertionError("batched SVM predictions diverge from serial loop")
    if batch.breakdowns != serial.breakdowns:
        raise AssertionError("batched SVM ledgers diverge from serial loop")

    # The batched pass is cheap (~1 ms) while the serial referee is ~100x
    # that, so give the fast side enough reps for the min-of-batches
    # estimator to filter scheduler noise; one serial pass is plenty.
    reps = 10 if quick else 30
    ns = _time_ns(
        lambda: svm_classify_batch(compiled, sv_int, coef_int, offset, X), reps
    ) / _BATCH
    ref_ns = _time_ns(
        lambda: svm_classify_serial(compiled, sv_int, coef_int, offset, X),
        1,
        warmup=False,
    ) / _BATCH
    return BenchResult(
        op="classify_svm_batch64",
        config={
            "batch": _BATCH,
            "instructions": len(compiled.program),
            "rows": compiled.rows,
        },
        reps=reps,
        ns_per_op=ns,
        baseline="serial_loop",
        baseline_ns_per_op=ref_ns,
    )


def bench_classify_bnn(quick: bool) -> BenchResult:
    """Batch-64 BNN output-layer argmax: lock-step vs 64 serial runs."""
    from repro.compile.classifier import compile_bnn_output
    from repro.perf.inference import (
        bnn_output_predict_batch,
        bnn_output_predict_serial,
    )

    compiled = compile_bnn_output(fan_in=8, n_classes=3, bias_bits=4, rows=256)
    rng = np.random.default_rng(2)
    weights01 = rng.integers(0, 2, size=(8, 3))
    biases = rng.integers(0, 8, size=3)
    X_bits = rng.integers(0, 2, size=(_BATCH, 8))

    batch = bnn_output_predict_batch(compiled, weights01, biases, X_bits)
    serial = bnn_output_predict_serial(compiled, weights01, biases, X_bits)
    if not np.array_equal(batch.predictions, serial.predictions):
        raise AssertionError("batched BNN predictions diverge from serial loop")
    if batch.breakdowns != serial.breakdowns:
        raise AssertionError("batched BNN ledgers diverge from serial loop")

    reps = 10 if quick else 30  # cheap fast side, see bench_classify_svm
    ns = _time_ns(
        lambda: bnn_output_predict_batch(compiled, weights01, biases, X_bits), reps
    ) / _BATCH
    ref_ns = _time_ns(
        lambda: bnn_output_predict_serial(compiled, weights01, biases, X_bits),
        1,
        warmup=False,
    ) / _BATCH
    return BenchResult(
        op="classify_bnn_batch64",
        config={
            "batch": _BATCH,
            "instructions": len(compiled.program),
            "rows": compiled.rows,
        },
        reps=reps,
        ns_per_op=ns,
        baseline="serial_loop",
        baseline_ns_per_op=ref_ns,
    )


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------

BENCHMARKS = (
    bench_logic_op,
    bench_step_instruction,
    bench_compiled_step_instruction,
    bench_intermittent_replay,
    bench_compiled_intermittent_replay,
    bench_trace_replay,
    bench_classify_svm,
    bench_classify_bnn,
)


def exercise_traced_decode() -> None:
    """Drive one traced run so the disassembly memo sees real traffic.

    No benchmark attaches telemetry — the timed paths all run with the
    controller's obs hook detached — so ``disassemble_word``'s cache
    counters were permanently zero in every checked-in report and a
    broken memo (stale key, dropped decorator) would have gone
    unnoticed.  One traced interpreter pass over the adder workload
    disassembles each distinct word once (misses) and every replayed
    loop iteration after that from the cache (hits), making the
    published ``disasm.*`` stats a live regression signal.
    """
    from repro.faults.campaign import adder_workload
    from repro.obs import InMemorySink, Telemetry

    mouse = adder_workload().build()
    mouse.attach_telemetry(Telemetry(InMemorySink()))
    mouse.run(compiled=False)  # the plan executor never decodes words


def run_bench(quick: bool = False, telemetry=None) -> dict:
    """Run every benchmark; returns the ``repro.bench/v1`` report."""
    from repro.perf.kernels import cache_stats, publish_cache_stats

    if telemetry is None:
        from repro.obs import current

        telemetry = current()

    results = []
    for bench in BENCHMARKS:
        with telemetry.span(f"bench.{bench.__name__}"):
            result = bench(quick)
        telemetry.counter(f"bench.{result.op}.reps").inc(result.reps)
        results.append(result)
    with telemetry.span("bench.exercise_traced_decode"):
        exercise_traced_decode()
    publish_cache_stats(telemetry)
    return {
        "schema": SCHEMA,
        "quick": quick,
        "results": [r.to_json_obj() for r in results],
        "cache": cache_stats(),
    }


def render(report: dict) -> str:
    from repro.experiments._format import format_table

    rows = []
    for r in report["results"]:
        speedup = r.get("speedup")
        rows.append(
            (
                r["op"],
                f"{r['ns_per_op'] / 1e3:.1f}",
                r.get("baseline", "-"),
                f"{r['baseline_ns_per_op'] / 1e3:.1f}"
                if "baseline_ns_per_op" in r
                else "-",
                f"{speedup:.1f}x" if speedup is not None else "-",
            )
        )
    table = format_table(
        ["op", "us/op", "baseline", "baseline us/op", "speedup"], rows
    )
    mode = "quick" if report["quick"] else "full"
    return f"hot-path benchmarks ({mode} mode, schema {report['schema']})\n{table}"


def write_report(report: dict, path: str) -> None:
    from repro.durability.atomic import atomic_write_text

    atomic_write_text(path, json.dumps(report, indent=2, sort_keys=True) + "\n")


def load_report(path: str) -> dict:
    """Read and schema-check a ``repro.bench/v1`` report file."""
    with open(path, "r", encoding="utf-8") as f:
        report = json.load(f)
    if not isinstance(report, dict) or report.get("schema") != SCHEMA:
        raise ValueError(
            f"{path}: not a {SCHEMA} report "
            f"(schema={report.get('schema') if isinstance(report, dict) else '?'!r})"
        )
    return report


def compare_reports(old: dict, new: dict, threshold: float = 0.30) -> dict:
    """Diff two ``repro.bench/v1`` reports op-by-op.

    For every op present in both reports the comparison carries the
    ns/op ratio (``new / old``; > 1 is a slowdown) and, where both
    sides measured an in-run baseline, the speedup delta.  An op
    regresses when its ns/op grew by more than ``threshold``
    (fractional — 0.30 tolerates the ~tens-of-percent noise absolute
    timings carry across machines and runs; the in-run speedup ratios
    are steadier, but the gate is on time so a baseline regression
    cannot mask one).
    """
    if threshold < 0:
        raise ValueError("threshold must be >= 0")
    old_ops = {r["op"]: r for r in old["results"]}
    new_ops = {r["op"]: r for r in new["results"]}
    ops = []
    for op in old_ops:
        if op not in new_ops:
            continue
        o, n = old_ops[op], new_ops[op]
        ratio = n["ns_per_op"] / o["ns_per_op"] if o["ns_per_op"] else float("inf")
        entry = {
            "op": op,
            "old_ns_per_op": o["ns_per_op"],
            "new_ns_per_op": n["ns_per_op"],
            "ratio": round(ratio, 3),
            "regressed": ratio > 1.0 + threshold,
        }
        if "speedup" in o and "speedup" in n:
            entry["old_speedup"] = o["speedup"]
            entry["new_speedup"] = n["speedup"]
            entry["speedup_delta"] = round(n["speedup"] - o["speedup"], 2)
        ops.append(entry)
    return {
        "schema": "repro.bench.compare/v1",
        "threshold": threshold,
        "ops": ops,
        "only_old": sorted(set(old_ops) - set(new_ops)),
        "only_new": sorted(set(new_ops) - set(old_ops)),
        "regressions": sorted(e["op"] for e in ops if e["regressed"]),
    }


def render_compare(comparison: dict) -> str:
    from repro.experiments._format import format_table

    rows = []
    for e in comparison["ops"]:
        delta = e.get("speedup_delta")
        rows.append(
            (
                e["op"],
                f"{e['old_ns_per_op'] / 1e3:.1f}",
                f"{e['new_ns_per_op'] / 1e3:.1f}",
                f"{e['ratio']:.2f}x",
                f"{delta:+.2f}" if delta is not None else "-",
                "REGRESSED" if e["regressed"] else "ok",
            )
        )
    table = format_table(
        ["op", "old us/op", "new us/op", "new/old", "speedup delta", "verdict"],
        rows,
    )
    out = [
        f"benchmark comparison (threshold {comparison['threshold']:.0%} slowdown)",
        table,
    ]
    if comparison["only_old"]:
        out.append(f"only in old: {', '.join(comparison['only_old'])}")
    if comparison["only_new"]:
        out.append(f"only in new: {', '.join(comparison['only_new'])}")
    if comparison["regressions"]:
        out.append(f"REGRESSIONS: {', '.join(comparison['regressions'])}")
    else:
        out.append("no regressions")
    return "\n".join(out)


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description="hot-path microbenchmarks")
    parser.add_argument("--out", default="BENCH_PR9.json")
    parser.add_argument("--quick", action="store_true")
    args = parser.parse_args(argv)
    report = run_bench(quick=args.quick)
    print(render(report))
    write_report(report, args.out)
    print(f"report: {args.out}")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())

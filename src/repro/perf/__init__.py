"""repro.perf — hot-path acceleration for the MOUSE simulator.

Four coordinated pieces, all bound by one hard invariant: **energy
ledgers, accuracy numbers, and report JSON stay byte-identical to the
scalar reference implementation** (the equivalence tests in
``tests/test_perf_equivalence.py`` and the lint cost-pass cross-check
are the referees).

* :mod:`repro.perf.kernels` — per-``(DeviceParameters, GateSpec)``
  frozen NumPy lookup tables (``r_total`` ladder, per-count currents,
  ``will_switch`` thresholds, ``gate_energy`` ladder), computed once and
  indexed by ``n_ones`` thereafter.  :class:`repro.array.tile.Tile`
  consumes these instead of rebuilding the tables on every gate.
* :mod:`repro.perf.batched` — lock-step batched inference: a
  :class:`BatchedMouse` carries a ``(batch, rows, cols)`` state tensor
  through one shared instruction stream (CRAM control flow is
  input-independent), producing bit-identical per-sample predictions
  and per-sample :class:`~repro.energy.metrics.Breakdown` ledgers.
* :mod:`repro.perf.parallel` — opt-in ``--jobs N`` process fan-out for
  the embarrassingly parallel sweeps (Fig. 9 points, accuracy rows,
  fault-campaign trials) with deterministic per-task seeding and
  ordered merges.
* :mod:`repro.perf.bench` — the microbenchmark + trajectory harness
  behind ``python -m repro bench`` and ``make bench-smoke``, writing
  ``BENCH_PR9.json`` (schema ``repro.bench/v1``).

See ``docs/PERFORMANCE.md`` for what is cached, the invalidation rules,
and the batched engine's semantics.
"""

from repro.perf.kernels import (
    ElectricalKernel,
    cache_stats,
    electrical_kernel,
    publish_cache_stats,
)
from repro.perf.batched import BatchedLedger, BatchedMouse, BatchedTile
from repro.perf.parallel import (
    get_default_jobs,
    parallel_map,
    parallel_tasks,
    set_default_jobs,
)

__all__ = [
    "ElectricalKernel",
    "electrical_kernel",
    "cache_stats",
    "publish_cache_stats",
    "BatchedMouse",
    "BatchedTile",
    "BatchedLedger",
    "parallel_map",
    "parallel_tasks",
    "get_default_jobs",
    "set_default_jobs",
]

"""Opt-in process fan-out for embarrassingly parallel experiments.

The repo's big sweeps — Fig. 9 latency points, accuracy over a dataset,
fault-campaign trials — are independent tasks whose outputs are merged
in task order.  This module runs them across forked worker processes
while keeping the results **byte-identical** to a serial run:

* **Determinism**: tasks carry their own seeds (e.g. the campaign's
  ``default_rng([seed, trial])``), so results do not depend on which
  worker ran them or in what order.
* **Ordered merge**: results always come back in submission order,
  regardless of completion order.
* **Fork inheritance, no pickling of work**: the experiment layers
  build closures over trained models and golden states, which do not
  pickle.  Workers are forked, so they inherit the task list by memory
  snapshot; only the (plain-data) *results* cross the pipe.
* **Quiet children**: a forked child sharing the parent's telemetry
  sink file descriptor would interleave writes and corrupt the event
  log, so workers run with the ambient hub forced to DISABLED; the
  parent emits any events when merging.

Anything that can go wrong with process pools (no fork support,
daemonic context, a single task, ``jobs=1``) degrades to the plain
serial loop — parallelism here is a throughput knob, never a semantic
one.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Callable, Optional, Sequence, TypeVar

T = TypeVar("T")

#: Process-wide default for ``jobs=None`` (set by the CLI's ``--jobs``).
_default_jobs = 1

#: Fork-inherited task list; valid only between pool setup and teardown
#: in the parent, and for the whole (short) life of a worker.
_ACTIVE_THUNKS: Optional[Sequence[Callable[[], object]]] = None


def set_default_jobs(jobs: int) -> None:
    """Set the process-wide default worker count (1 = serial)."""
    global _default_jobs
    if jobs < 1:
        raise ValueError("jobs must be at least 1")
    _default_jobs = jobs


def get_default_jobs() -> int:
    return _default_jobs


def _resolve_jobs(jobs: Optional[int]) -> int:
    if jobs is None:
        return _default_jobs
    if jobs < 1:
        raise ValueError("jobs must be at least 1")
    return jobs


def _child_init() -> None:
    """Run in each forked worker before any task: silence telemetry and
    make SIGTERM exit cleanly.

    The child inherited the parent's hub — including any open sink file
    descriptors.  Writing to them from multiple processes would
    interleave events, so the ambient hub is forced to DISABLED for the
    worker's lifetime.

    SIGTERM (what ``Pool.terminate`` and a Ctrl-C'd parent send) is
    rebound to ``sys.exit(143)`` so ``finally`` blocks run — in
    particular, the atomic-write helpers unlink their half-written temp
    files instead of leaving them for someone else to sweep.
    """
    import signal
    import sys

    from repro.obs import telemetry

    telemetry._current = telemetry.DISABLED
    signal.signal(signal.SIGTERM, lambda signum, frame: sys.exit(143))


def _run_thunk(index: int):
    assert _ACTIVE_THUNKS is not None
    return _ACTIVE_THUNKS[index]()


def parallel_tasks(
    thunks: Sequence[Callable[[], T]], jobs: Optional[int] = None
) -> list[T]:
    """Run zero-argument callables, returning results in task order.

    With ``jobs <= 1`` (or one task, or no usable fork context) this is
    exactly ``[t() for t in thunks]``.  Otherwise the thunks are
    inherited by forked workers and executed ``jobs`` at a time; task
    ``i``'s result is always at position ``i``.
    """
    thunks = list(thunks)
    jobs = _resolve_jobs(jobs)
    if jobs <= 1 or len(thunks) <= 1:
        return [t() for t in thunks]

    global _ACTIVE_THUNKS
    if _ACTIVE_THUNKS is not None:
        # Nested fan-out (a parallel task spawning parallel tasks):
        # run the inner level serially rather than oversubscribing.
        return [t() for t in thunks]

    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - fork always exists on Linux
        return [t() for t in thunks]

    _ACTIVE_THUNKS = thunks
    try:
        with context.Pool(
            processes=min(jobs, len(thunks)), initializer=_child_init
        ) as pool:
            return pool.map(_run_thunk, range(len(thunks)))
    except (OSError, AssertionError):  # pragma: no cover - no fork/daemon
        return [t() for t in thunks]
    finally:
        _ACTIVE_THUNKS = None


def parallel_map(
    fn: Callable[..., T], tasks: Sequence, jobs: Optional[int] = None
) -> list[T]:
    """``[fn(task) for task in tasks]``, optionally across workers.

    ``fn`` and the tasks need not pickle — they are captured in thunks
    and inherited by fork, like :func:`parallel_tasks`.
    """
    return parallel_tasks([_bind(fn, task) for task in tasks], jobs)


def _bind(fn: Callable[..., T], task) -> Callable[[], T]:
    return lambda: fn(task)


def cpu_count() -> int:
    """Usable CPUs (for ``--jobs 0`` = "all cores" CLI semantics)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1

"""Opt-in process fan-out for embarrassingly parallel experiments.

The repo's big sweeps — Fig. 9 latency points, accuracy over a dataset,
fault-campaign trials — are independent tasks whose outputs are merged
in task order.  This module runs them across forked worker processes
while keeping the results **byte-identical** to a serial run:

* **Determinism**: tasks carry their own seeds (e.g. the campaign's
  ``default_rng([seed, trial])``), so results do not depend on which
  worker ran them or in what order.
* **Ordered merge**: results always come back in submission order,
  regardless of completion order.
* **Fork inheritance, no pickling of work**: the experiment layers
  build closures over trained models and golden states, which do not
  pickle.  Workers are forked, so they inherit the task list by memory
  snapshot; only the (plain-data) *results* cross the pipe.
* **Sharded telemetry**: a forked child sharing the parent's sink file
  descriptor would interleave writes and corrupt the event log, so
  each worker writes its own JSONL shard (worker id + task index in
  every record) and the parent merges the shards deterministically —
  ordered by task, independent of scheduling — when the pool drains
  (see :mod:`repro.obs.fanout`).  When the ambient hub has no events
  file, workers run with telemetry DISABLED as before.

Anything that can go wrong with process pools (no fork support,
daemonic context, a single task, ``jobs=1``) degrades to the plain
serial loop — parallelism here is a throughput knob, never a semantic
one.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Callable, Optional, Sequence, TypeVar

T = TypeVar("T")

#: Process-wide default for ``jobs=None`` (set by the CLI's ``--jobs``).
_default_jobs = 1

#: Fork-inherited task list; valid only between pool setup and teardown
#: in the parent, and for the whole (short) life of a worker.
_ACTIVE_THUNKS: Optional[Sequence[Callable[[], object]]] = None

#: Stats of the most recent fan-out (for run manifests): jobs, tasks,
#: and — when telemetry was sharded — shard/event counts.
_LAST_FANOUT: Optional[dict] = None


def last_fanout() -> Optional[dict]:
    """Stats of the most recent :func:`parallel_tasks` call (or None)."""
    return _LAST_FANOUT


def set_default_jobs(jobs: int) -> None:
    """Set the process-wide default worker count (1 = serial)."""
    global _default_jobs
    if jobs < 1:
        raise ValueError("jobs must be at least 1")
    _default_jobs = jobs


def get_default_jobs() -> int:
    return _default_jobs


def _resolve_jobs(jobs: Optional[int]) -> int:
    if jobs is None:
        return _default_jobs
    if jobs < 1:
        raise ValueError("jobs must be at least 1")
    return jobs


def _child_init(worker_counter=None, events_path: Optional[str] = None) -> None:
    """Run in each forked worker before any task: re-point telemetry
    and make SIGTERM exit cleanly.

    The child inherited the parent's hub — including any open sink file
    descriptors.  Writing to them from multiple processes would
    interleave events, so the ambient hub is replaced: with an
    ``events_path`` the worker gets its own shard hub (see
    :mod:`repro.obs.fanout`), otherwise DISABLED as before.

    SIGTERM (what ``Pool.terminate`` and a Ctrl-C'd parent send) is
    rebound to ``sys.exit(143)`` so ``finally`` blocks run — in
    particular, the atomic-write helpers unlink their half-written temp
    files instead of leaving them for someone else to sweep.
    """
    import signal
    import sys

    from repro.obs import telemetry

    if events_path is not None and worker_counter is not None:
        with worker_counter.get_lock():
            worker_id = worker_counter.value
            worker_counter.value += 1
        from repro.obs import fanout

        telemetry._current = fanout.worker_hub(events_path, worker_id)
    else:
        telemetry._current = telemetry.DISABLED
    signal.signal(signal.SIGTERM, lambda signum, frame: sys.exit(143))


def _run_thunk(index: int):
    assert _ACTIVE_THUNKS is not None
    from repro.obs import fanout

    fanout.set_current_task(index)
    return _ACTIVE_THUNKS[index]()


def parallel_tasks(
    thunks: Sequence[Callable[[], T]], jobs: Optional[int] = None
) -> list[T]:
    """Run zero-argument callables, returning results in task order.

    With ``jobs <= 1`` (or one task, or no usable fork context) this is
    exactly ``[t() for t in thunks]``.  Otherwise the thunks are
    inherited by forked workers and executed ``jobs`` at a time; task
    ``i``'s result is always at position ``i``.
    """
    thunks = list(thunks)
    jobs = _resolve_jobs(jobs)
    if jobs <= 1 or len(thunks) <= 1:
        return [t() for t in thunks]

    global _ACTIVE_THUNKS, _LAST_FANOUT
    if _ACTIVE_THUNKS is not None:
        # Nested fan-out (a parallel task spawning parallel tasks):
        # run the inner level serially rather than oversubscribing.
        return [t() for t in thunks]

    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - fork always exists on Linux
        return [t() for t in thunks]

    from repro.obs import current as _current_hub

    hub = _current_hub()
    events_path = hub.events_path if hub.enabled else None
    processes = min(jobs, len(thunks))
    info = {"jobs": processes, "tasks": len(thunks)}

    _ACTIVE_THUNKS = thunks
    try:
        worker_counter = context.Value("i", 0)
        with context.Pool(
            processes=processes,
            initializer=_child_init,
            initargs=(worker_counter, events_path),
        ) as pool:
            results = pool.map(_run_thunk, range(len(thunks)))
    except (OSError, AssertionError):  # pragma: no cover - no fork/daemon
        return [t() for t in thunks]
    finally:
        _ACTIVE_THUNKS = None
    if events_path is not None:
        from repro.obs import fanout

        info.update(fanout.merge_shards(hub))
    _LAST_FANOUT = info
    return results


def parallel_map(
    fn: Callable[..., T], tasks: Sequence, jobs: Optional[int] = None
) -> list[T]:
    """``[fn(task) for task in tasks]``, optionally across workers.

    ``fn`` and the tasks need not pickle — they are captured in thunks
    and inherited by fork, like :func:`parallel_tasks`.
    """
    return parallel_tasks([_bind(fn, task) for task in tasks], jobs)


def _bind(fn: Callable[..., T], task) -> Callable[[], T]:
    return lambda: fn(task)


def cpu_count() -> int:
    """Usable CPUs (for ``--jobs 0`` = "all cores" CLI semantics)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1

"""The pre-acceleration scalar reference paths, preserved verbatim.

These functions are the byte-identity referees: they reproduce, line
for line, the hot paths as they existed before :mod:`repro.perf`
(rebuilding the electrical tables per gate, re-scanning the activation
mask per operation, running one sample per machine).  The equivalence
tests assert the accelerated paths match them bit-for-bit, and the
bench harness times them in the same run to report honest speedups —
the "serial baseline measured in the same run" of ``BENCH_PR9.json``.

Nothing in the simulator proper calls into this module.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.array.lines import check_logic_rows
from repro.array.tile import OpResult, Tile
from repro.logic.gates import GateSpec, design_voltage, gate_energy
from repro.logic.resistance import total_path_resistance


def logic_op_reference(
    tile: Tile,
    spec: GateSpec,
    input_rows: Sequence[int],
    output_row: int,
    switch_mask: Optional[np.ndarray] = None,
) -> OpResult:
    """``Tile.logic_op`` as it existed before the cached kernels.

    Re-derives the full electrical solve — the ``r_total`` ladder, the
    per-count currents, and the ``gate_energy`` table — from scratch,
    and re-scans the boolean activation mask, exactly like the seed
    implementation.  Mutates ``tile`` with the same semantics as the
    accelerated path.
    """
    rows = list(input_rows)
    if len(rows) != spec.n_inputs:
        raise ValueError(
            f"{spec.name} takes {spec.n_inputs} input rows, got {len(rows)}"
        )
    for r in rows + [output_row]:
        tile._check_row(r)
    check_logic_rows(rows, output_row)

    active = tile.active_columns
    if not active.any():
        return OpResult(energy=0.0, n_columns=0, switched=0)

    inputs = tile.state[rows][:, active]  # (n_inputs, n_active)
    n_ones = inputs.sum(axis=0)  # per active column

    # Electrical solve, vectorised by table lookup over n_ones —
    # with the tables rebuilt on every call (the seed behaviour).
    voltage = design_voltage(tile.params, spec)
    r_total = np.array(
        [
            total_path_resistance(tile.params, spec.n_inputs, k, spec.preset)
            for k in range(spec.n_inputs + 1)
        ]
    )
    currents = voltage / r_total[n_ones]
    will_switch = currents >= tile.params.switching_current

    if switch_mask is not None:
        switch_mask = np.asarray(switch_mask, dtype=bool)
        if switch_mask.shape != (tile.cols,):
            raise ValueError("switch_mask must cover every column")
        will_switch &= switch_mask[active]

    target = bool(spec.direction.target_state)
    out = tile.state[output_row]
    active_idx = np.flatnonzero(active)
    switch_idx = active_idx[will_switch]
    before = out[switch_idx].copy()
    out[switch_idx] = target

    energy = np.array(
        [gate_energy(tile.params, spec, int(k)) for k in range(spec.n_inputs + 1)]
    )[n_ones].sum()
    return OpResult(
        energy=float(energy),
        n_columns=int(active.sum()),
        switched=int((before != target).sum()),
    )

"""Cached electrical kernels for the tile simulator's logic hot path.

Every MOUSE logic instruction is, electrically, a table lookup: for a
gate with ``n`` inputs there are only ``n + 1`` distinct input states
(the number of logic-1 inputs), and for each the resistor network, the
drive current, the switch/hold decision, and the dissipated energy are
fixed by the ``(DeviceParameters, GateSpec)`` pair.  The scalar
reference implementation rebuilt those tables — two Python-list →
``np.array`` conversions plus ~2(n+1) resistor-network solves — on
*every* gate execution.  This module computes them exactly once per
``(params, spec)`` pair and freezes them.

Byte-identity contract: every table entry is produced by the *same*
functions the reference path called (:func:`design_voltage`,
:func:`total_path_resistance`, :func:`gate_energy`), in the same order,
so indexing a cached table is bit-for-bit equal to rebuilding it.
``tests/test_perf_equivalence.py`` asserts this for every library gate
on all three technologies.

Invalidation: there is none to do — :class:`DeviceParameters` and
:class:`GateSpec` are frozen dataclasses, so a cache entry can never go
stale; perturbed parameter sets (device-variation studies) hash to new
keys and get their own entries, exactly like the pre-existing
``design_voltage`` memo.  The cache is unbounded for the same reason
``design_voltage``'s is: the working set is |technologies in play| ×
|gate library|.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.devices.parameters import DeviceParameters
from repro.logic.gates import GateSpec, design_voltage, gate_energy
from repro.logic.resistance import total_path_resistance


@dataclass(frozen=True)
class ElectricalKernel:
    """Frozen per-``(params, spec)`` lookup tables, indexed by ``n_ones``.

    All arrays have length ``spec.n_inputs + 1`` and are marked
    read-only; entry ``k`` describes the input combination with ``k``
    logic-1 inputs.
    """

    voltage: float  #: designed drive voltage (V)
    r_total: np.ndarray  #: total path resistance ladder (ohms)
    currents: np.ndarray  #: drive current through the output cell (A)
    will_switch: np.ndarray  #: bool: current clears the critical current
    energy: np.ndarray  #: per-column gate energy ladder (J)
    target: bool  #: output state the gate switches *to*

    @property
    def n_inputs(self) -> int:
        return len(self.r_total) - 1


@lru_cache(maxsize=None)
def electrical_kernel(
    params: DeviceParameters, spec: GateSpec
) -> ElectricalKernel:
    """The cached kernel for one technology/gate pair.

    Each table entry is computed by the exact calls the scalar reference
    path made per-operation, so gathered lookups reproduce its floats
    bit-for-bit (IEEE division/comparison are deterministic; gather
    commutes with elementwise ops).
    """
    voltage = design_voltage(params, spec)
    r_total = np.array(
        [
            total_path_resistance(params, spec.n_inputs, k, spec.preset)
            for k in range(spec.n_inputs + 1)
        ]
    )
    currents = voltage / r_total
    will_switch = currents >= params.switching_current
    energy = np.array(
        [gate_energy(params, spec, int(k)) for k in range(spec.n_inputs + 1)]
    )
    for table in (r_total, currents, will_switch, energy):
        table.setflags(write=False)
    return ElectricalKernel(
        voltage=voltage,
        r_total=r_total,
        currents=currents,
        will_switch=will_switch,
        energy=energy,
        target=bool(spec.direction.target_state),
    )


# ----------------------------------------------------------------------
# Cache observability (repro.obs integration)
# ----------------------------------------------------------------------


def cache_stats() -> dict[str, int]:
    """Hit/miss/size numbers for every perf-layer memo.

    Includes the decode and disassembly word caches the controller's
    fetch/telemetry paths use, so one call captures the whole
    instruction hot path.
    """
    from repro.isa.assembler import disassemble_word
    from repro.isa.instruction import decode_cached

    kernel = electrical_kernel.cache_info()
    decode = decode_cached.cache_info()
    disasm = disassemble_word.cache_info()
    return {
        "kernel.hits": kernel.hits,
        "kernel.misses": kernel.misses,
        "kernel.size": kernel.currsize,
        "decode.hits": decode.hits,
        "decode.misses": decode.misses,
        "decode.size": decode.currsize,
        "disasm.hits": disasm.hits,
        "disasm.misses": disasm.misses,
        "disasm.size": disasm.currsize,
    }


def publish_cache_stats(telemetry=None) -> dict[str, int]:
    """Mirror :func:`cache_stats` into ``perf.cache.*`` counters.

    Uses the ambient hub when ``telemetry`` is omitted.  Counters are
    monotonic, so each publish raises them to the current absolute
    value (idempotent when nothing changed).  Returns the stats dict.
    """
    if telemetry is None:
        from repro.obs import current

        telemetry = current()
    stats = cache_stats()
    for key, value in stats.items():
        counter = telemetry.counter(f"perf.cache.{key}")
        if value > counter.value:
            counter.inc(value - counter.value)
    return stats

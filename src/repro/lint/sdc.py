"""The ``SDC*`` lint pass: static silent-data-corruption accounting.

The pass is the lint-side contract check for :mod:`repro.harden`:

* **SDC004** (error) — the ``repro.harden/v1`` metadata must describe
  the instruction stream it is attached to: every verify mark and every
  TMR-group pc must name a logic instruction, and a group's voter must
  actually write the row the group claims to protect.  The fault layer
  executes this metadata by pc; stale metadata silently disables the
  protection it promises.
* **SDC002** (warning) — a TMR group whose voter instructions are not
  verify-marked leaves the voter's own output row unprotected (the
  classic TMR hole :func:`repro.compile.macros.tmr_bit` documents).
* **SDC003** (warning) — verify marks on instructions the criticality
  analysis proves masked (dead output, redefined before HALT) are pure
  energy overhead.
* **SDC001** (error) — with a flip-rate table and an ``sdc_target`` in
  the :class:`~repro.lint.config.LintConfig`, the proven bound from
  :func:`repro.harden.bound.sdc_bound` must not exceed the target.
  The bound is a *sound upper bound* on the measured campaign SDC rate
  (``make harden-smoke`` asserts the dominance empirically), so an
  SDC001-clean program is statically certified, not just tested.

Programs without hardening metadata and configs without flip rates are
skipped outright — the pass adds zero cost to every pre-existing lint
path.
"""

from __future__ import annotations

from repro.core.program import Program
from repro.isa.instruction import LogicInstruction
from repro.lint.config import LintConfig
from repro.lint.diagnostics import Diagnostic
from repro.lint.passes import LintPass, _diag


class SdcPass(LintPass):
    """Check hardening metadata and the proven SDC bound."""

    name = "sdc"

    def run(self, program: Program, config: LintConfig) -> list[Diagnostic]:
        meta = program.harden_meta
        rates = config.flip_rate_map()
        if meta is None and rates is None:
            return []
        if rates is None:
            rates = {
                str(k): float(v)
                for k, v in (meta.get("flip_rates") or {}).items()
            }

        out: list[Diagnostic] = []
        out.extend(self._check_meta(program, meta))
        if any(d.severity.name == "ERROR" for d in out):
            # Bound math over broken metadata would double-count or
            # miss pcs; report the inconsistency alone.
            return out

        # Imported lazily: repro.harden depends on repro.lint, and the
        # fast path above keeps the cycle (and the import cost) off
        # every lint run that has no hardening in play.
        from repro.harden.bound import sdc_bound
        from repro.harden.criticality import analyse

        report = analyse(program, rates, config)
        by_pc = report.by_pc()
        for pc in sorted(program.verify_pcs):
            record = by_pc.get(pc)
            if record is not None and record.masked:
                out.append(
                    _diag(
                        "SDC003",
                        f"verify mark on masked gate {record.gate} at pc "
                        f"{pc}: its output (t{record.tile} row "
                        f"{record.output_row}) is dead and redefined "
                        "before HALT",
                        index=pc,
                        tile=record.tile,
                        row=record.output_row,
                        hint="drop the mark; masking already absorbs "
                        "every flip here",
                    )
                )
        for group in (meta or {}).get("tmr_groups", ()):
            voter_pcs = [int(pc) for pc in group.get("voter_pcs", ())]
            unmarked = [
                pc for pc in voter_pcs if pc not in program.verify_pcs
            ]
            if unmarked:
                out.append(
                    _diag(
                        "SDC002",
                        f"TMR group for t{group.get('tile')} row "
                        f"{group.get('output_row')} has unverified voter "
                        f"pc(s) {unmarked}: a flip on the voter's own "
                        "output row is silent",
                        index=unmarked[0],
                        tile=group.get("tile"),
                        row=group.get("output_row"),
                        hint="harden with voter_verify=True (or "
                        "tmr_bit(..., verify=True))",
                    )
                )

        bound = sdc_bound(program, rates, config, report=report)
        if config.sdc_target is not None and bound.total > config.sdc_target:
            worst = ", ".join(
                f"pc {pc} ({p:.2e})" for pc, p in bound.worst[:3]
            )
            out.append(
                _diag(
                    "SDC001",
                    f"proven SDC bound {bound.total:.4e} exceeds the "
                    f"target {config.sdc_target:.4e} "
                    f"(unprotected {bound.unprotected:.4e}, voter "
                    f"{bound.voter:.4e}, TMR residual "
                    f"{bound.tmr_residual:.4e})",
                    index=bound.worst[0][0] if bound.worst else None,
                    hint="protect the dominant contributors"
                    + (f": {worst}" if worst else ""),
                )
            )
        return out

    # ------------------------------------------------------------------

    @staticmethod
    def _check_meta(program: Program, meta) -> list[Diagnostic]:
        """SDC004: the metadata must describe *this* program."""
        if meta is None:
            return []
        out: list[Diagnostic] = []

        def bad(message: str, index=None, hint: str = "") -> None:
            out.append(_diag("SDC004", message, index=index, hint=hint))

        schema = meta.get("schema")
        if schema != "repro.harden/v1":
            bad(
                f"unknown hardening schema {schema!r}",
                hint="expected 'repro.harden/v1'",
            )
            return out

        def is_logic(pc) -> bool:
            return (
                isinstance(pc, int)
                and 0 <= pc < len(program)
                and isinstance(program[pc], LogicInstruction)
            )

        for pc in meta.get("verify_pcs", ()):
            if not is_logic(pc):
                bad(
                    f"verify mark at pc {pc!r} does not name a logic "
                    "instruction",
                    index=pc if isinstance(pc, int) else None,
                    hint="re-run the hardening pass after any rewrite "
                    "that moves instructions",
                )
        for group in meta.get("tmr_groups", ()):
            pcs = list(group.get("copy_pcs", ())) + list(
                group.get("voter_pcs", ())
            )
            for pc in pcs:
                if not is_logic(pc):
                    bad(
                        f"TMR group for row {group.get('output_row')!r} "
                        f"references pc {pc!r}, which is not a logic "
                        "instruction",
                        index=pc if isinstance(pc, int) else None,
                    )
            voter_pcs = group.get("voter_pcs", ())
            if voter_pcs and is_logic(voter_pcs[-1]):
                final = program[int(voter_pcs[-1])]
                if final.output_row != group.get("output_row"):
                    bad(
                        f"TMR voter at pc {voter_pcs[-1]} writes row "
                        f"{final.output_row}, not the protected row "
                        f"{group.get('output_row')!r}",
                        index=int(voter_pcs[-1]),
                    )
        return out

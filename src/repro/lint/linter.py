"""The linter driver: run a pass pipeline, collect a report.

One :class:`Linter` binds a :class:`~repro.lint.config.LintConfig` and
a pass list; :meth:`Linter.run` executes every pass over a program and
returns a sorted :class:`~repro.lint.diagnostics.LintReport`.  When
telemetry is enabled (:func:`repro.obs.current`), each run emits a
``lint.report`` event and bumps ``lint.*`` counters so lint verdicts
land in run manifests.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

from repro.core.program import Program
from repro.lint.config import LintConfig
from repro.lint.diagnostics import LintReport, render
from repro.lint.passes import LintPass, default_passes


class LintError(ValueError):
    """A strict build rejected a program; carries the full report."""

    def __init__(self, report: LintReport) -> None:
        self.report = report
        super().__init__(render(report))


class Linter:
    """A configured pass pipeline, reusable across programs."""

    def __init__(
        self,
        config: Optional[LintConfig] = None,
        passes: Optional[Sequence[LintPass]] = None,
    ) -> None:
        self.config = config or LintConfig()
        self.passes = tuple(passes) if passes is not None else default_passes()

    def run(self, program: Program, name: Optional[str] = None) -> LintReport:
        diagnostics = []
        for lint_pass in self.passes:
            diagnostics.extend(lint_pass.run(program, self.config))
        diagnostics.sort(
            key=lambda d: (
                d.index if d.index is not None else -1,
                d.rule,
                d.tile if d.tile is not None else -1,
                d.row if d.row is not None else -1,
            )
        )
        report = LintReport(
            program=name or program.name,
            n_instructions=len(program),
            diagnostics=tuple(diagnostics),
            passes=tuple(p.name for p in self.passes),
        )
        self._observe(report)
        return report

    @staticmethod
    def _observe(report: LintReport) -> None:
        from repro import obs

        telemetry = obs.current()
        if not telemetry.enabled:
            return
        telemetry.counter("lint.runs").inc()
        telemetry.counter("lint.errors").inc(report.n_errors)
        telemetry.counter("lint.warnings").inc(report.n_warnings)
        telemetry.emit(
            obs.events.LINT_REPORT,
            time.time(),
            program=report.program,
            errors=report.n_errors,
            warnings=report.n_warnings,
            rules=",".join(report.rules_fired()),
        )


def lint_program(
    program: Program,
    config: Optional[LintConfig] = None,
    passes: Optional[Sequence[LintPass]] = None,
    name: Optional[str] = None,
) -> LintReport:
    """Convenience one-shot lint of one program."""
    return Linter(config=config, passes=passes).run(program, name=name)

"""The lint pass pipeline (everything except the cost pass).

Each pass is one linear scan over the instruction stream producing
:class:`~repro.lint.diagnostics.Diagnostic` findings; passes share the
active-column mask tracker :func:`iter_with_masks` but are otherwise
independent, so the pipeline is pluggable — run all of them, a subset,
or a custom pass implementing :class:`LintPass`.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.array.bank import BROADCAST_TILE, SENSOR_TILE
from repro.array.lines import row_parity
from repro.core.program import Program
from repro.isa.instruction import (
    ActivateColumnsInstruction,
    HaltInstruction,
    Instruction,
    LogicInstruction,
    MemoryInstruction,
)
from repro.lint.config import LintConfig
from repro.lint.diagnostics import Diagnostic
from repro.lint.rules import rule


def _diag(
    rule_id: str,
    message: str,
    index: Optional[int] = None,
    tile: Optional[int] = None,
    row: Optional[int] = None,
    hint: str = "",
) -> Diagnostic:
    """Build a diagnostic, pulling the severity from the rule catalog."""
    return Diagnostic(
        rule=rule_id,
        severity=rule(rule_id).severity,
        message=message,
        index=index,
        tile=tile,
        row=row,
        hint=hint,
    )


class LintPass:
    """One static check over a program.  Subclasses set ``name`` and
    implement :meth:`run`; ``run`` must keep all state local so pass
    instances are reusable across programs."""

    name = "base"

    def run(self, program: Program, config: LintConfig) -> list[Diagnostic]:
        raise NotImplementedError


# ----------------------------------------------------------------------
# Shared active-column tracking
# ----------------------------------------------------------------------


def iter_with_masks(
    program: Program, config: LintConfig
) -> Iterator[tuple[int, Instruction, dict[int, Optional[frozenset[int]]]]]:
    """Yield ``(index, instruction, masks_before)`` over a program.

    ``masks_before`` maps each data tile to the column set latched
    *before* the instruction executes — ``None`` until the tile's first
    Activate Columns.  The dict is mutated in place between yields (do
    not hold references across iterations).
    """
    masks: dict[int, Optional[frozenset[int]]] = {
        t: None for t in range(config.n_data_tiles)
    }
    for index, instr in enumerate(program):
        yield index, instr, masks
        if isinstance(instr, ActivateColumnsInstruction):
            if instr.bulk:
                first, last = instr.columns
                columns = frozenset(range(first, min(last, config.cols - 1) + 1))
            else:
                columns = frozenset(c for c in instr.columns if c < config.cols)
            for t in config.target_tiles(instr.tile):
                masks[t] = columns


def _masked_column_count(
    masks: dict[int, Optional[frozenset[int]]], tiles: tuple[int, ...], cols: int
) -> int:
    """Total active columns across ``tiles``, conservatively assuming a
    full-width mask for tiles that never latched one (upper bound)."""
    total = 0
    for t in tiles:
        mask = masks.get(t)
        total += cols if mask is None else len(mask)
    return total


# ----------------------------------------------------------------------
# Structure: addressing + control-flow shape
# ----------------------------------------------------------------------


class StructurePass(LintPass):
    """Addresses within the bank; exactly one terminal HALT."""

    name = "structure"

    def run(self, program: Program, config: LintConfig) -> list[Diagnostic]:
        out: list[Diagnostic] = []
        halt_index: Optional[int] = None
        for index, instr in enumerate(program):
            if isinstance(instr, HaltInstruction):
                if halt_index is None:
                    halt_index = index
                continue
            out.extend(self._check_addresses(index, instr, config))
        if halt_index is None:
            out.append(
                _diag(
                    "STRUCT003",
                    "program does not end in HALT",
                    index=len(program) - 1 if len(program) else None,
                    hint="call Program.ensure_halt() or append HALT",
                )
            )
        elif halt_index != len(program) - 1:
            out.append(
                _diag(
                    "STRUCT004",
                    f"{len(program) - 1 - halt_index} instruction(s) after "
                    f"the HALT at index {halt_index} never execute",
                    index=halt_index + 1,
                    hint="delete trailing instructions or move the HALT",
                )
            )
        return out

    @staticmethod
    def _check_addresses(
        index: int, instr: Instruction, config: LintConfig
    ) -> list[Diagnostic]:
        out: list[Diagnostic] = []

        def check_tile(tile: int, allow_sensor: bool = False) -> None:
            if tile == BROADCAST_TILE or (allow_sensor and tile == SENSOR_TILE):
                return
            if not 0 <= tile < config.n_data_tiles:
                out.append(
                    _diag(
                        "STRUCT001",
                        f"tile {tile} out of range for a bank with "
                        f"{config.n_data_tiles} data tile(s)",
                        index=index,
                        tile=tile,
                        hint=f"data tiles are 0..{config.n_data_tiles - 1}",
                    )
                )

        def check_row(row: int) -> None:
            if not 0 <= row < config.rows:
                out.append(
                    _diag(
                        "STRUCT002",
                        f"row {row} out of range for a {config.rows}-row bank",
                        index=index,
                        tile=instr.tile,
                        row=row,
                        hint=f"rows are 0..{config.rows - 1}",
                    )
                )

        if isinstance(instr, LogicInstruction):
            check_tile(instr.tile)
            for row in (*instr.input_rows, instr.output_row):
                check_row(row)
        elif isinstance(instr, MemoryInstruction):
            is_read = instr.op.upper() == "READ"
            check_tile(instr.tile, allow_sensor=is_read)
            if is_read and instr.tile == BROADCAST_TILE:
                out.append(
                    _diag(
                        "STRUCT001",
                        "cannot READ from the broadcast address",
                        index=index,
                        tile=instr.tile,
                        hint="READ one tile (or the sensor) at a time",
                    )
                )
            check_row(instr.row)
        elif isinstance(instr, ActivateColumnsInstruction):
            check_tile(instr.tile)
            last = instr.columns[1] if instr.bulk else max(instr.columns)
            if last >= config.cols:
                out.append(
                    _diag(
                        "STRUCT002",
                        f"column {last} out of range for a "
                        f"{config.cols}-column bank",
                        index=index,
                        tile=instr.tile,
                        hint=f"columns are 0..{config.cols - 1}",
                    )
                )
        return out


# ----------------------------------------------------------------------
# Idempotency: re-execution safety (Table I)
# ----------------------------------------------------------------------


class IdempotencyPass(LintPass):
    """Output row disjoint from input rows, no duplicated inputs."""

    name = "idempotency"

    def run(self, program: Program, config: LintConfig) -> list[Diagnostic]:
        out: list[Diagnostic] = []
        for index, instr in enumerate(program):
            if not isinstance(instr, LogicInstruction):
                continue
            if instr.output_row in instr.input_rows:
                out.append(
                    _diag(
                        "IDEM001",
                        f"{instr.gate} output row {instr.output_row} is "
                        "also an input row: an outage replay would read "
                        "the already-switched output",
                        index=index,
                        tile=instr.tile,
                        row=instr.output_row,
                        hint="allocate a fresh output row (Table I "
                        "re-execution safety)",
                    )
                )
            seen: set[int] = set()
            for in_row in instr.input_rows:
                if in_row in seen:
                    out.append(
                        _diag(
                            "IDEM002",
                            f"{instr.gate} input row {in_row} appears "
                            "more than once",
                            index=index,
                            tile=instr.tile,
                            row=in_row,
                            hint="duplicate an operand through a BUF "
                            "copy instead",
                        )
                    )
                seen.add(in_row)
        return out


# ----------------------------------------------------------------------
# Parity: the bitline discipline (Figures 2 and 3)
# ----------------------------------------------------------------------


class ParityPass(LintPass):
    """Inputs on one bitline parity, output on the opposite one."""

    name = "parity"

    def run(self, program: Program, config: LintConfig) -> list[Diagnostic]:
        out: list[Diagnostic] = []
        for index, instr in enumerate(program):
            if not isinstance(instr, LogicInstruction):
                continue
            parities = {row_parity(r) for r in instr.input_rows}
            if len(parities) != 1:
                out.append(
                    _diag(
                        "PAR001",
                        f"{instr.gate} input rows "
                        f"{list(instr.input_rows)} sit on both bitline "
                        "parities",
                        index=index,
                        tile=instr.tile,
                        hint="mirror minority-parity operands with BUF "
                        "(ProgramBuilder.harmonise)",
                    )
                )
                continue
            (in_parity,) = parities
            if row_parity(instr.output_row) == in_parity:
                out.append(
                    _diag(
                        "PAR002",
                        f"{instr.gate} output row {instr.output_row} "
                        "shares its inputs' bitline parity",
                        index=index,
                        tile=instr.tile,
                        row=instr.output_row,
                        hint="the logic current returns on the opposite "
                        "bitline: allocate the output on the other "
                        "parity",
                    )
                )
        return out


# ----------------------------------------------------------------------
# Preset / def-use dataflow
# ----------------------------------------------------------------------


class _Def:
    """Last definition of one (tile, row): who wrote it, when, and —
    for presets — with which polarity under which column mask."""

    __slots__ = ("kind", "index", "polarity", "mask", "used")

    def __init__(self, kind, index, polarity=None, mask=None):
        self.kind = kind  # "preset" | "gate" | "write"
        self.index = index
        self.polarity = polarity  # preset only: True = PRESET1
        self.mask = mask  # preset only: active columns at preset time
        self.used = False


class PresetPass(LintPass):
    """Row-level dataflow: gate outputs preset (with the right polarity,
    under a covering mask) before the gate fires; WRITE only after the
    buffer was filled; dead-store presets flagged.

    A row read before any definition is *not* an error — it is a
    program input the host (or the sensor transfer) placed before
    launch, which is how every compiled classifier receives its
    operands.
    """

    name = "preset"

    def run(self, program: Program, config: LintConfig) -> list[Diagnostic]:
        out: list[Diagnostic] = []
        defs: dict[tuple[int, int], _Def] = {}
        buffer_filled = False

        def mark_use(tile: int, row: int) -> None:
            d = defs.get((tile, row))
            if d is not None:
                d.used = True

        def new_def(tile: int, row: int, d: _Def) -> None:
            old = defs.get((tile, row))
            if old is not None and old.kind == "preset" and not old.used:
                out.append(
                    _diag(
                        "PRE003",
                        f"preset of t{tile} row {row} at index "
                        f"{old.index} is overwritten at index {d.index} "
                        "without ever being used",
                        index=old.index,
                        tile=tile,
                        row=row,
                        hint="drop the wasted preset (each one costs a "
                        "cycle and a write per active column)",
                    )
                )
            defs[(tile, row)] = d

        for index, instr, masks in iter_with_masks(program, config):
            if isinstance(instr, MemoryInstruction):
                op = instr.op.upper()
                tiles = config.target_tiles(instr.tile)
                if op == "READ":
                    buffer_filled = True
                    for t in tiles:
                        mark_use(t, instr.row)
                elif op == "WRITE":
                    if not buffer_filled:
                        out.append(
                            _diag(
                                "PRE004",
                                "WRITE executes before any READ filled "
                                "the row buffer",
                                index=index,
                                tile=instr.tile,
                                row=instr.row,
                                hint="READ a source row (or the sensor) "
                                "first",
                            )
                        )
                    for t in tiles:
                        new_def(t, instr.row, _Def("write", index))
                else:  # PRESET0 / PRESET1
                    polarity = op == "PRESET1"
                    for t in tiles:
                        new_def(
                            t,
                            instr.row,
                            _Def("preset", index, polarity, masks.get(t)),
                        )
            elif isinstance(instr, LogicInstruction):
                spec = instr.spec
                for t in config.target_tiles(instr.tile):
                    for in_row in instr.input_rows:
                        mark_use(t, in_row)
                    d = defs.get((t, instr.output_row))
                    if d is None or d.kind != "preset":
                        wrote = (
                            "never written"
                            if d is None
                            else f"last written by a {d.kind} at index {d.index}"
                        )
                        out.append(
                            _diag(
                                "PRE001",
                                f"{instr.gate} fires into t{t} row "
                                f"{instr.output_row}, which is {wrote} "
                                "(not freshly preset)",
                                index=index,
                                tile=t,
                                row=instr.output_row,
                                hint=(
                                    "emit "
                                    + ("PRESET1" if spec.preset else "PRESET0")
                                    + " immediately before the gate"
                                ),
                            )
                        )
                    else:
                        if d.polarity != spec.preset:
                            wanted = "PRESET1" if spec.preset else "PRESET0"
                            got = "PRESET1" if d.polarity else "PRESET0"
                            out.append(
                                _diag(
                                    "PRE002",
                                    f"{instr.gate} needs its output "
                                    f"{wanted} but t{t} row "
                                    f"{instr.output_row} was {got} at "
                                    f"index {d.index}",
                                    index=index,
                                    tile=t,
                                    row=instr.output_row,
                                    hint=f"use {wanted}: the drive "
                                    "current only switches away from "
                                    "the preset state",
                                )
                            )
                        gate_mask = masks.get(t)
                        if (
                            gate_mask is not None
                            and d.mask is not None
                            and not gate_mask <= d.mask
                        ):
                            grown = sorted(gate_mask - d.mask)
                            out.append(
                                _diag(
                                    "PRE005",
                                    f"{instr.gate} executes in columns "
                                    f"{grown} of t{t} that were not "
                                    "active when row "
                                    f"{instr.output_row} was preset at "
                                    f"index {d.index}",
                                    index=index,
                                    tile=t,
                                    row=instr.output_row,
                                    hint="re-preset after widening the "
                                    "active-column mask",
                                )
                            )
                        # The gate consumes the preset: mark it used
                        # before the output row is redefined.
                        d.used = True
                    new_def(t, instr.output_row, _Def("gate", index))
        return out


# ----------------------------------------------------------------------
# Activate-columns consistency
# ----------------------------------------------------------------------


class _Activation:
    __slots__ = ("index", "used")

    def __init__(self, index: int):
        self.index = index
        self.used = False


class ActivatePass(LintPass):
    """Masked instructions see a latched mask; activations are neither
    redundant nor dead (the duplicated-register invariant: only the
    latest activation survives a restart, so an unused one is lost)."""

    name = "activate"

    def run(self, program: Program, config: LintConfig) -> list[Diagnostic]:
        out: list[Diagnostic] = []
        latches: dict[int, _Activation] = {}

        for index, instr, masks in iter_with_masks(program, config):
            if isinstance(instr, LogicInstruction) or (
                isinstance(instr, MemoryInstruction)
                and instr.op.upper().startswith("PRESET")
            ):
                for t in config.target_tiles(instr.tile):
                    if masks.get(t) is None:
                        out.append(
                            _diag(
                                "ACT001",
                                f"{instr} executes on t{t} before any "
                                "Activate Columns latched a mask there",
                                index=index,
                                tile=t,
                                hint="issue ACTIVATE for the target "
                                "tile first (the instruction is a "
                                "silent no-op otherwise)",
                            )
                        )
                    else:
                        latch = latches.get(t)
                        if latch is not None:
                            latch.used = True
            elif isinstance(instr, ActivateColumnsInstruction):
                tiles = config.target_tiles(instr.tile)
                if instr.bulk:
                    first, last = instr.columns
                    new_mask = frozenset(
                        range(first, min(last, config.cols - 1) + 1)
                    )
                else:
                    new_mask = frozenset(
                        c for c in instr.columns if c < config.cols
                    )
                if tiles and all(masks.get(t) == new_mask for t in tiles):
                    out.append(
                        _diag(
                            "ACT002",
                            f"{instr} re-latches the mask the target "
                            "tile(s) already hold",
                            index=index,
                            tile=instr.tile,
                            hint="drop the redundant activation (a "
                            "cycle + a register backup for nothing)",
                        )
                    )
                for t in tiles:
                    latch = latches.get(t)
                    if (
                        latch is not None
                        and not latch.used
                        and latch.index != index
                    ):
                        out.append(
                            _diag(
                                "ACT003",
                                f"Activate Columns at index "
                                f"{latch.index} is replaced at index "
                                f"{index} before any masked "
                                "instruction used it",
                                index=latch.index,
                                tile=t,
                                hint="only the latest activation "
                                "survives in the duplicated register; "
                                "merge the two column sets or drop the "
                                "first",
                            )
                        )
                    latch = _Activation(index)
                    latches[t] = latch
        return out


#: The default pipeline, cost and SDC passes included (imported lazily
#: to keep this module free of the energy and hardening stacks).
def default_passes() -> tuple[LintPass, ...]:
    from repro.lint.cost import CostPass
    from repro.lint.sdc import SdcPass

    return (
        StructurePass(),
        IdempotencyPass(),
        ParityPass(),
        PresetPass(),
        ActivatePass(),
        CostPass(),
        SdcPass(),
    )

"""The lint rule catalog.

Every diagnostic the linter can produce carries a stable rule id from
this table.  Ids are grouped by the paper property they protect:

* ``IDEM*`` — re-execution safety of logic gates (Table I): because
  switching is unidirectional and the preset fixes the only reachable
  target state, a replayed gate is idempotent *only if* its output row
  is disjoint from its input rows.
* ``PAR*``  — the bitline-parity discipline (Figure 2/3): inputs on one
  parity, output on the other, the electrical precondition of a logic
  operation.
* ``PRE*``  — the preset protocol (Section II-B): every gate output is
  preset to the gate's required value immediately before the gate
  fires, and presets that can never be observed are wasted writes.
* ``ACT*``  — active-column latch consistency (Section IV-B): masked
  instructions need a latched mask, and the single non-volatile
  duplicated Activate register (Section IV-D) means only the *latest*
  activation survives a restart.
* ``STRUCT*`` — addressing and control-flow shape: every address within
  the bank, exactly one terminal HALT.
* ``COST*`` — the static non-termination condition (Section VIII): a
  single instruction whose worst-case energy exceeds the capacitor
  window can never commit under harvested power.
* ``SDC*`` — silent-data-corruption accounting (:mod:`repro.harden`):
  the statically proven SDC upper bound of a (hardened) program must
  meet its target, hardening metadata must describe the instruction
  stream it rides on, and protection should not be spent where
  dataflow masking already absorbs every flip.
* ``SEM*`` — semantic correctness (:mod:`repro.verify`): the truth-table
  symbolic interpreter proves each compiled output's Boolean function
  equal to its golden reference over every input assignment, and any
  rewrite (hardening, future optimisers) equivalent to its source.
* ``REEX*`` — re-execution safety over replay windows
  (:mod:`repro.verify`): replay from any commit/checkpoint boundary
  must be idempotent — the whole-window semantic generalisation of the
  per-instruction ``IDEM*`` rules to the windows the durability layer
  actually replays.

``docs/LINT.md`` is the narrative version of this table; a test keeps
the two in sync.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lint.diagnostics import Severity


@dataclass(frozen=True)
class Rule:
    """One checkable property: stable id, severity, and provenance."""

    id: str
    severity: Severity
    title: str
    #: Paper section / table (or repo invariant) the rule enforces.
    why: str


_RULES = (
    Rule(
        "IDEM001",
        Severity.ERROR,
        "gate output row is also an input row",
        "Table I: re-execution safety needs the output cell disjoint "
        "from the inputs, else a replay reads the overwritten value",
    ),
    Rule(
        "IDEM002",
        Severity.ERROR,
        "duplicate gate input rows",
        "Figure 3: each input MTJ is one physical cell; a row cannot "
        "be wired into the logic path twice",
    ),
    Rule(
        "PAR001",
        Severity.ERROR,
        "gate input rows on mixed bitline parities",
        "Figure 2: inputs must all hang off one bitline (BLE or BLO)",
    ),
    Rule(
        "PAR002",
        Severity.ERROR,
        "gate output row on the same parity as its inputs",
        "Figure 3: the logic current returns through the opposite "
        "bitline, so the output row needs the opposite parity",
    ),
    Rule(
        "PRE001",
        Severity.ERROR,
        "gate fires into a row that is not freshly preset",
        "Section II-B: the output MTJ must hold the preset value when "
        "the gate executes; Table I idempotency also depends on it",
    ),
    Rule(
        "PRE002",
        Severity.ERROR,
        "preset polarity does not match the gate's required preset",
        "Section II-B: each gate design fixes the preset value (the "
        "drive direction only switches *away* from it)",
    ),
    Rule(
        "PRE003",
        Severity.WARNING,
        "dead-store preset: overwritten before any use",
        "A preset no instruction observes is a wasted write — pure "
        "energy cost on a harvested budget",
    ),
    Rule(
        "PRE004",
        Severity.ERROR,
        "WRITE before any READ filled the row buffer",
        "Section IV-B: WRITE drives the controller's row buffer into "
        "the array; before the first READ the buffer holds garbage",
    ),
    Rule(
        "PRE005",
        Severity.ERROR,
        "active columns grew between preset and gate",
        "Presets write only the columns active at preset time; a gate "
        "firing in additional columns reads an un-preset output cell",
    ),
    Rule(
        "ACT001",
        Severity.ERROR,
        "masked instruction with no active columns latched",
        "Section IV-B: logic and preset execute only in latched "
        "columns; with none latched the instruction is a no-op",
    ),
    Rule(
        "ACT002",
        Severity.WARNING,
        "redundant Activate Columns (mask unchanged)",
        "The latch already holds this mask; re-issuing it costs a "
        "cycle, decoder energy, and a register backup for nothing",
    ),
    Rule(
        "ACT003",
        Severity.WARNING,
        "Activate Columns latch replaced before any masked use",
        "Section IV-D: only one duplicated Activate register exists, "
        "so an unused activation is dead work (and a replay after an "
        "outage would restore the *later* mask anyway)",
    ),
    Rule(
        "STRUCT001",
        Severity.ERROR,
        "tile address out of range for the bank",
        "Section IV-B addressing: data tiles, the sensor address "
        "(READ only), or the broadcast address",
    ),
    Rule(
        "STRUCT002",
        Severity.ERROR,
        "row or column address out of range for the bank",
        "The ISA encodes 10-bit rows / 10-bit columns, but a smaller "
        "bank makes high addresses invalid at load time",
    ),
    Rule(
        "STRUCT003",
        Severity.ERROR,
        "program does not end in HALT",
        "Section IV-B: a program is a straight line ending in HALT; "
        "without it the PC runs off the instruction tiles",
    ),
    Rule(
        "STRUCT004",
        Severity.WARNING,
        "unreachable instructions after HALT",
        "Execution stops at the first HALT; trailing instructions "
        "occupy instruction-tile memory but never run",
    ),
    Rule(
        "COST001",
        Severity.ERROR,
        "worst-case instruction energy exceeds the capacitor window",
        "Section VIII: an instruction that cannot complete on one full "
        "buffer charge never commits — guaranteed non-termination "
        "under harvested power (the condition repro.harvest diagnoses "
        "dynamically as NonTerminationError)",
    ),
    Rule(
        "COST002",
        Severity.WARNING,
        "instruction plus restart overhead exceeds the window",
        "Section IV-D: a restart pays Restore before replaying the "
        "interrupted instruction; if the pair exceeds the window, an "
        "outage landing here livelocks even though cold-start "
        "execution would pass",
    ),
    Rule(
        "SDC001",
        Severity.ERROR,
        "proven SDC bound exceeds the configured target",
        "repro.harden.bound: the union bound over unprotected critical "
        "gates, unverified voters, and TMR double-fault residuals "
        "upper-bounds the measured campaign SDC rate; a program whose "
        "bound misses its target needs more protection, not more "
        "trials",
    ),
    Rule(
        "SDC002",
        Severity.WARNING,
        "TMR voter output is not verify-marked",
        "TMR outvotes a fault in any copy but never in the voter's own "
        "output row — the classic unprotected-voter hole; marking the "
        "voter for re-read closes it for one row-read per vote",
    ),
    Rule(
        "SDC003",
        Severity.WARNING,
        "protection spent on a masked instruction",
        "A gate whose output is dead and redefined before HALT cannot "
        "corrupt anything; TMR or verify marks there are pure energy "
        "overhead on a harvested budget",
    ),
    Rule(
        "SDC004",
        Severity.ERROR,
        "hardening metadata inconsistent with the instruction stream",
        "repro.harden/v1: verify marks and TMR groups are contracts "
        "the fault layer executes by pc; metadata pointing at missing "
        "or non-logic instructions silently disables the protection "
        "it promises",
    ),
    Rule(
        "SEM001",
        Severity.ERROR,
        "output computes the wrong Boolean function",
        "repro.verify translation validation: the cell's truth table "
        "over every input assignment differs from the golden reference "
        "semantics (the diagnostic carries a concrete counterexample "
        "assignment and anchors at the cell's last writer)",
    ),
    Rule(
        "SEM002",
        Severity.ERROR,
        "checked output is never written at the focus column",
        "repro.verify translation validation: the spec names an output "
        "cell the program never defines — typically a column mask that "
        "excludes the lane the readout expects",
    ),
    Rule(
        "SEM003",
        Severity.ERROR,
        "rewrite is not semantically equivalent to its source",
        "repro.verify rewrite preservation: every source-defined cell "
        "must hold an identical Boolean function after the rewrite, "
        "and rewrite-private scratch must be scrubbed to constant 0 "
        "before HALT (closes the harden_program proof obligation)",
    ),
    Rule(
        "REEX001",
        Severity.ERROR,
        "window replay from a crash point diverges",
        "repro.verify re-execution safety: executing part of a commit "
        "window and then replaying the whole window from its boundary "
        "must equal the uninterrupted run; a window that reads a cell "
        "it also overwrites breaks recovery (Section IV-D dual-PC "
        "replay, repro.durability checkpoint windows)",
    ),
    Rule(
        "REEX002",
        Severity.ERROR,
        "window replay re-samples a committed sensor reading",
        "repro.verify re-execution safety: a replayed window that "
        "re-issues a sensor READ stores a different sample than the "
        "pre-crash execution committed — recovery must persist the "
        "sample in its own window before any use",
    ),
)

RULES: dict[str, Rule] = {rule.id: rule for rule in _RULES}


def rule(rule_id: str) -> Rule:
    """Look up a rule by id (KeyError on unknown ids keeps passes
    honest: a diagnostic cannot cite a rule this table doesn't have)."""
    return RULES[rule_id]

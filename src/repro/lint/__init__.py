"""repro.lint: static verification of compiled CRAM programs.

MOUSE's free-checkpointing correctness argument rests on *static*
properties of the instruction stream — idempotent gates (Table I), the
bitline-parity discipline, the preset protocol, active-column latch
consistency, and a per-instruction energy that fits the capacitor
window (Section VIII).  This package checks all of them ahead of time,
without executing anything: a pluggable pass pipeline over any
:class:`~repro.core.program.Program`, producing structured
:class:`Diagnostic` findings with stable rule ids, JSON and human
renderers, a CLI (``python -m repro lint``), and an opt-in strict mode
in :meth:`repro.compile.builder.ProgramBuilder.finish`.

See ``docs/LINT.md`` for the rule catalog and paper justifications.
"""

from repro.lint.config import LintConfig
from repro.lint.cost import (
    InstructionBound,
    kind_energy_bound,
    program_bounds,
    worst_gate_energy,
)
from repro.lint.diagnostics import Diagnostic, LintReport, Severity, render
from repro.lint.linter import LintError, Linter, lint_program
from repro.lint.passes import (
    ActivatePass,
    IdempotencyPass,
    LintPass,
    ParityPass,
    PresetPass,
    StructurePass,
    default_passes,
    iter_with_masks,
)
from repro.lint.cost import CostPass
from repro.lint.rules import RULES, Rule, rule
from repro.lint.sdc import SdcPass
from repro.lint.targets import TARGETS, LintTarget, build_target

__all__ = [
    "ActivatePass",
    "CostPass",
    "Diagnostic",
    "IdempotencyPass",
    "InstructionBound",
    "LintConfig",
    "LintError",
    "LintPass",
    "LintReport",
    "LintTarget",
    "Linter",
    "ParityPass",
    "PresetPass",
    "RULES",
    "Rule",
    "SdcPass",
    "Severity",
    "StructurePass",
    "TARGETS",
    "build_target",
    "default_passes",
    "iter_with_masks",
    "kind_energy_bound",
    "lint_program",
    "program_bounds",
    "render",
    "rule",
    "worst_gate_energy",
]

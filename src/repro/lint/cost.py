"""Static cost pass: closed-form per-instruction energy upper bounds.

For every instruction the pass computes a worst-case energy — the
electrical model's maximum over input combinations, times a
conservative active-column count, plus the peripheral, fetch, and
backup shares the controller charges — and compares it against the
capacitor window of each device technology.  An instruction whose
bound exceeds the window can *never* commit under harvested power
(Section VIII); :class:`repro.harvest.intermittent` diagnoses the same
condition dynamically as ``NonTerminationError``, the linter rejects
it before a single gate fires.

The bounds are sound with respect to the cycle-accurate simulator:
``tests/test_lint_cost.py`` cross-checks every bound against the
telemetry-measured per-instruction energy, and against the Table IV
workload profiles, on all three technologies.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.core.program import Program
from repro.devices.parameters import DeviceParameters
from repro.energy.model import InstructionCostModel
from repro.isa.assembler import disassemble_one
from repro.isa.instruction import (
    ActivateColumnsInstruction,
    HaltInstruction,
    LogicInstruction,
    MemoryInstruction,
)
from repro.lint.config import LintConfig
from repro.lint.diagnostics import Diagnostic
from repro.lint.passes import (
    LintPass,
    _diag,
    _masked_column_count,
    iter_with_masks,
)
from repro.logic.gates import GateSpec, gate_energy
from repro.logic.library import gate_by_name


@lru_cache(maxsize=None)
def worst_gate_energy(params: DeviceParameters, spec: GateSpec) -> float:
    """Per-column gate energy maximised over input combinations.

    Energy depends only on the input resistances (the pulse runs the
    full window either way), so the worst case is the extremum over the
    number of logic-1 inputs — an upper bound on what the electrical
    solve in :meth:`repro.array.tile.Tile.logic_op` can ever charge.
    """
    return max(
        gate_energy(params, spec, n_ones) for n_ones in range(spec.n_inputs + 1)
    )


def kind_energy_bound(
    cost: InstructionCostModel, kind: str, n_columns: int
) -> tuple[float, float]:
    """Worst-case ``(energy, backup)`` of one instruction of ``kind``.

    ``kind`` follows the profile vocabulary of
    :func:`repro.compile.arith.instruction_histogram`: ``PRESET`` /
    ``READ`` / ``WRITE`` / ``ACTIVATE`` or a gate name.  ``energy``
    includes the fetch share (matching
    :class:`~repro.harvest.intermittent.Segment` pricing); ``backup``
    is the per-instruction checkpoint (plus the duplicated-register
    copy for ``ACTIVATE``).
    """
    backup = cost.backup_energy()
    kind = kind.upper()
    if kind == "PRESET":
        body = cost.preset_energy(max(n_columns, 1))
    elif kind == "READ":
        body = cost.row_read_energy(n_columns)
    elif kind == "WRITE":
        body = cost.row_write_energy(n_columns)
    elif kind == "ACTIVATE":
        body = cost.activate_energy(n_columns)
        backup += cost.activate_backup_energy()
    elif kind == "HALT":
        body = 0.0
        backup = 0.0
    else:
        spec = gate_by_name(kind)
        array = worst_gate_energy(cost.params, spec) * n_columns
        body = cost.logic_energy_measured(array, spec.n_inputs + 1)
    return body + cost.fetch_energy(), backup


@dataclass(frozen=True)
class InstructionBound:
    """Worst-case cost of one instruction at one technology point."""

    index: int
    text: str
    #: Worst-case instruction energy including fetch, joules.
    energy: float
    #: Checkpoint energy charged at commit (0 for HALT), joules.
    backup: float
    #: Fixed issue interval, seconds.
    latency: float

    @property
    def total(self) -> float:
        return self.energy + self.backup


def program_bounds(
    program: Program, config: LintConfig, cost: InstructionCostModel
) -> list[InstructionBound]:
    """Per-instruction worst-case bounds over a whole program.

    Column counts come from tracking the Activate Columns stream; a
    tile whose mask was never latched is assumed fully active (the
    sound direction for an upper bound — the activate pass separately
    flags it as ACT001).
    """
    bounds: list[InstructionBound] = []
    latency = cost.cycle_time
    for index, instr, masks in iter_with_masks(program, config):
        backup = cost.backup_energy()
        if isinstance(instr, LogicInstruction):
            spec = instr.spec
            n = _masked_column_count(
                masks, config.target_tiles(instr.tile), config.cols
            )
            array = worst_gate_energy(cost.params, spec) * n
            body = cost.logic_energy_measured(array, spec.n_inputs + 1)
        elif isinstance(instr, MemoryInstruction):
            op = instr.op.upper()
            if op == "READ":
                body = cost.row_read_energy(config.cols)
            elif op == "WRITE":
                n_tiles = max(1, len(config.target_tiles(instr.tile)))
                body = cost.row_write_energy(config.cols) * n_tiles
            else:  # PRESET0 / PRESET1
                n = _masked_column_count(
                    masks, config.target_tiles(instr.tile), config.cols
                )
                body = cost.preset_energy(max(n, 1))
        elif isinstance(instr, ActivateColumnsInstruction):
            body = cost.activate_energy(instr.column_count)
            backup += cost.activate_backup_energy()
        elif isinstance(instr, HaltInstruction):
            body = 0.0
            backup = 0.0  # HALT parks the machine: no commit, no backup
        else:  # pragma: no cover - exhaustive over the ISA
            raise TypeError(f"cannot bound {type(instr).__name__}")
        bounds.append(
            InstructionBound(
                index=index,
                text=disassemble_one(instr),
                energy=body + cost.fetch_energy(),
                backup=backup,
                latency=latency,
            )
        )
    return bounds


class CostPass(LintPass):
    """Reject programs whose worst-case single instruction cannot fit
    the capacitor's charge window at any configured technology."""

    name = "cost"

    def run(self, program: Program, config: LintConfig) -> list[Diagnostic]:
        from repro.harvest.capacitor import buffer_for

        out: list[Diagnostic] = []
        for params in config.technologies:
            buffer = config.buffer or buffer_for(params)
            window = buffer.window_energy
            cost = InstructionCostModel(params)
            # Restart overhead: Restore re-issues the saved Activate
            # Columns; bound its width by the widest activation seen.
            max_activation = max(
                (
                    i.column_count
                    for i in program
                    if isinstance(i, ActivateColumnsInstruction)
                ),
                default=0,
            )
            restore = (
                cost.restore_energy(max_activation) if max_activation else 0.0
            )
            for bound in program_bounds(program, config, cost):
                if bound.total <= 0.0:
                    continue  # HALT costs only its fetch; never flags
                if bound.total > window:
                    out.append(
                        _diag(
                            "COST001",
                            f"worst-case energy of {bound.text!r} is "
                            f"{bound.total:.3e} J but the "
                            f"{params.name} capacitor window holds "
                            f"{window:.3e} J: the instruction can "
                            "never commit under harvested power",
                            index=bound.index,
                            hint="narrow the active-column set (the "
                            "Section IV-C power knob) or use a larger "
                            "buffer",
                        )
                    )
                elif bound.total + restore > window:
                    out.append(
                        _diag(
                            "COST002",
                            f"{bound.text!r} plus restart overhead "
                            f"({bound.total:.3e} + {restore:.3e} J) "
                            f"exceeds the {params.name} window "
                            f"({window:.3e} J): an outage landing "
                            "here cannot make progress",
                            index=bound.index,
                            hint="narrow the active-column set or "
                            "enlarge the buffer margin",
                        )
                    )
        return out

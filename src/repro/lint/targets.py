"""Named lintable programs: the compiled-program surface of the repo.

``python -m repro lint`` resolves target names through this registry.
Each target rebuilds a real compiled program — the fault-campaign
workloads and every :mod:`repro.compile.classifier` pipeline — together
with the bank shape it is loaded into, so the linter checks exactly
what the simulator would execute.  All targets must lint clean; that is
an acceptance criterion enforced by ``tests/test_lint_targets.py`` and
``make lint``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.program import Program
from repro.lint.config import LintConfig


@dataclass(frozen=True)
class LintTarget:
    """One named program the CLI can lint."""

    name: str
    description: str
    build: Callable[[], tuple[Program, LintConfig]]


def _adder() -> tuple[Program, LintConfig]:
    from repro.compile import arith
    from repro.compile.builder import ProgramBuilder

    # The fault-campaign adder (repro.faults.adder_workload): a 4-bit
    # ripple adder over three SIMD columns.
    builder = ProgramBuilder(tile=0, rows=256, cols=8, reserved_rows=16)
    builder.activate((0, 1, 2))
    x = builder.word_at([0, 2, 4, 6])
    y = builder.word_at([8, 10, 12, 14])
    arith.ripple_add(builder, x, y)
    return builder.finish(), LintConfig(n_data_tiles=1, rows=256, cols=8)


def _svm() -> tuple[Program, LintConfig]:
    from repro.compile.classifier import compile_svm_decision

    svm = compile_svm_decision(
        n_support=2,
        dimensions=2,
        input_bits=2,
        sv_bits=2,
        coef_bits=2,
        offset_bits=2,
        rows=1024,
        n_columns=1,
    )
    return svm.program, LintConfig(n_data_tiles=1, rows=1024, cols=1)


def _svm_ovr() -> tuple[Program, LintConfig]:
    from repro.compile.classifier import compile_multiclass_svm

    ovr = compile_multiclass_svm(
        n_classes=3, n_support_per_class=2, dimensions=2, rows=1024
    )
    return ovr.program, LintConfig(n_data_tiles=1, rows=1024, cols=1)


def _bnn_layer() -> tuple[Program, LintConfig]:
    from repro.compile.classifier import compile_bnn_layer

    layer = compile_bnn_layer(fan_in=8, n_neurons=4, rows=1024)
    return layer.program, LintConfig(n_data_tiles=1, rows=1024, cols=4)


def _bnn_output() -> tuple[Program, LintConfig]:
    from repro.compile.classifier import compile_bnn_output

    out = compile_bnn_output(fan_in=8, n_classes=3, rows=1024)
    return out.program, LintConfig(n_data_tiles=1, rows=1024, cols=1)


TARGETS: dict[str, LintTarget] = {
    t.name: t
    for t in (
        LintTarget(
            "adder",
            "fault-campaign 4-bit ripple adder (3 SIMD columns)",
            _adder,
        ),
        LintTarget(
            "svm",
            "binary SVM decision pipeline (dot, square, accumulate)",
            _svm,
        ),
        LintTarget(
            "svm-ovr",
            "one-vs-rest multiclass SVM with in-array argmax",
            _svm_ovr,
        ),
        LintTarget(
            "bnn-layer",
            "binary layer: XNOR, popcount, threshold over 4 neurons",
            _bnn_layer,
        ),
        LintTarget(
            "bnn-output",
            "BNN output layer: per-class scores plus argmax",
            _bnn_output,
        ),
    )
}


def build_target(name: str) -> tuple[Program, LintConfig]:
    """Build one registered target (KeyError on unknown names)."""
    return TARGETS[name].build()

"""Lint configuration: the bank shape and technologies to check against.

Static analysis needs the same context :meth:`repro.core.program.
Program.validate` takes — how many data tiles, how many rows and
columns — plus, for the cost pass, which device technologies (and
optionally which energy buffer) to bound against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.array.bank import BROADCAST_TILE
from repro.devices.parameters import ALL_TECHNOLOGIES, DeviceParameters

if TYPE_CHECKING:  # pragma: no cover
    from repro.harvest.capacitor import EnergyBuffer


@dataclass(frozen=True)
class LintConfig:
    """Context one linter run checks a program against."""

    n_data_tiles: int = 1
    rows: int = 1024
    cols: int = 1024
    #: Technologies the cost pass bounds against (all three by default).
    technologies: tuple[DeviceParameters, ...] = ALL_TECHNOLOGIES
    #: Energy buffer override; None = the paper's buffer per technology
    #: (:func:`repro.harvest.capacitor.buffer_for`).
    buffer: Optional["EnergyBuffer"] = None

    def __post_init__(self) -> None:
        if self.n_data_tiles < 1:
            raise ValueError("need at least one data tile")
        if self.rows < 2 or self.cols < 1:
            raise ValueError("bank needs at least 2 rows and 1 column")

    def target_tiles(self, tile: int) -> tuple[int, ...]:
        """Data tiles an instruction addressed to ``tile`` touches.

        The broadcast address fans out to every data tile; addresses
        outside the bank resolve to no tiles (the structure pass
        reports those separately, so dataflow passes don't crash on
        them).
        """
        if tile == BROADCAST_TILE:
            return tuple(range(self.n_data_tiles))
        if 0 <= tile < self.n_data_tiles:
            return (tile,)
        return ()

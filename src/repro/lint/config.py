"""Lint configuration: the bank shape and technologies to check against.

Static analysis needs the same context :meth:`repro.core.program.
Program.validate` takes — how many data tiles, how many rows and
columns — plus, for the cost pass, which device technologies (and
optionally which energy buffer) to bound against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Optional

from repro.array.bank import BROADCAST_TILE
from repro.devices.parameters import ALL_TECHNOLOGIES, DeviceParameters

if TYPE_CHECKING:  # pragma: no cover
    from repro.harvest.capacitor import EnergyBuffer


@dataclass(frozen=True)
class LintConfig:
    """Context one linter run checks a program against."""

    n_data_tiles: int = 1
    rows: int = 1024
    cols: int = 1024
    #: Technologies the cost pass bounds against (all three by default).
    technologies: tuple[DeviceParameters, ...] = ALL_TECHNOLOGIES
    #: Energy buffer override; None = the paper's buffer per technology
    #: (:func:`repro.harvest.capacitor.buffer_for`).
    buffer: Optional["EnergyBuffer"] = None
    #: Per-gate output-flip probabilities for the ``SDC*`` pass (any
    #: mapping is accepted and normalised to a sorted tuple of pairs so
    #: the config stays frozen/hashable).  ``None`` means "use the
    #: program's own ``harden_meta`` rates, if any".
    flip_rates: Optional[Mapping[str, float]] = None
    #: Proven-SDC-bound ceiling SDC001 enforces; ``None`` disables the
    #: rule (the bound is still computed and reported by the pass).
    sdc_target: Optional[float] = None

    def __post_init__(self) -> None:
        if self.n_data_tiles < 1:
            raise ValueError("need at least one data tile")
        if self.rows < 2 or self.cols < 1:
            raise ValueError("bank needs at least 2 rows and 1 column")
        if self.flip_rates is not None:
            pairs = tuple(
                sorted((str(k), float(v)) for k, v in dict(self.flip_rates).items())
            )
            for name, rate in pairs:
                if not 0.0 <= rate <= 1.0:
                    raise ValueError(
                        f"flip rate for {name!r} must be in [0, 1]"
                    )
            object.__setattr__(self, "flip_rates", pairs)
        if self.sdc_target is not None and not 0.0 <= self.sdc_target <= 1.0:
            raise ValueError("sdc_target must be a probability")

    def flip_rate_map(self) -> Optional[dict[str, float]]:
        """The normalised flip-rate table as a plain dict (or None)."""
        if self.flip_rates is None:
            return None
        return dict(self.flip_rates)

    def target_tiles(self, tile: int) -> tuple[int, ...]:
        """Data tiles an instruction addressed to ``tile`` touches.

        The broadcast address fans out to every data tile; addresses
        outside the bank resolve to no tiles (the structure pass
        reports those separately, so dataflow passes don't crash on
        them).
        """
        if tile == BROADCAST_TILE:
            return tuple(range(self.n_data_tiles))
        if 0 <= tile < self.n_data_tiles:
            return (tile,)
        return ()

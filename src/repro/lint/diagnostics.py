"""Structured lint findings and their renderers.

A :class:`Diagnostic` is one finding — rule id, severity, the
instruction index it anchors to, the tile/row locus, and a fix hint.
A :class:`LintReport` is everything one linter run produced over one
program, with deterministic JSON (sorted keys, no timestamps) and a
human rendering for the CLI.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Optional


class Severity(str, Enum):
    """Finding severity: errors block strict compilation, warnings
    flag wasted work or restart hazards."""

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:  # "error", not "Severity.ERROR"
        return self.value


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one lint pass."""

    rule: str
    severity: Severity
    message: str
    #: Instruction index the finding anchors to (None = whole program).
    index: Optional[int] = None
    tile: Optional[int] = None
    row: Optional[int] = None
    hint: str = ""

    def locus(self) -> str:
        """Compact "@index t<tile> row <row>" locus string."""
        parts = []
        if self.index is not None:
            parts.append(f"@{self.index}")
        if self.tile is not None:
            parts.append(f"t{self.tile}")
        if self.row is not None:
            parts.append(f"row {self.row}")
        return " ".join(parts)

    def to_json_obj(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "rule": self.rule,
            "severity": str(self.severity),
            "message": self.message,
        }
        if self.index is not None:
            out["index"] = self.index
        if self.tile is not None:
            out["tile"] = self.tile
        if self.row is not None:
            out["row"] = self.row
        if self.hint:
            out["hint"] = self.hint
        return out

    def __str__(self) -> str:
        locus = self.locus()
        head = f"{self.severity}[{self.rule}]"
        if locus:
            head += f" {locus}"
        text = f"{head}: {self.message}"
        if self.hint:
            text += f" (hint: {self.hint})"
        return text


@dataclass
class LintReport:
    """All findings of one linter run over one program."""

    program: str
    n_instructions: int
    diagnostics: tuple[Diagnostic, ...] = ()
    passes: tuple[str, ...] = field(default_factory=tuple)

    @property
    def n_errors(self) -> int:
        return sum(1 for d in self.diagnostics if d.severity is Severity.ERROR)

    @property
    def n_warnings(self) -> int:
        return sum(
            1 for d in self.diagnostics if d.severity is Severity.WARNING
        )

    @property
    def ok(self) -> bool:
        """No errors (warnings do not fail a lint)."""
        return self.n_errors == 0

    @property
    def clean(self) -> bool:
        """No findings at all."""
        return not self.diagnostics

    def rules_fired(self) -> tuple[str, ...]:
        return tuple(sorted({d.rule for d in self.diagnostics}))

    def by_rule(self, rule: str) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.rule == rule)

    def to_json_obj(self) -> dict[str, Any]:
        return {
            "schema": "repro.lint.report/v1",
            "program": self.program,
            "instructions": self.n_instructions,
            "passes": list(self.passes),
            "errors": self.n_errors,
            "warnings": self.n_warnings,
            "diagnostics": [d.to_json_obj() for d in self.diagnostics],
        }

    def to_json(self) -> str:
        """Canonical serialisation (sorted keys, no timestamps)."""
        return json.dumps(self.to_json_obj(), indent=2, sort_keys=True) + "\n"


def render(report: LintReport, tool: str = "lint") -> str:
    """Human rendering of one report (the CLI's output)."""
    if report.clean:
        verdict = "clean"
    else:
        verdict = f"{report.n_errors} error(s), {report.n_warnings} warning(s)"
    lines = [
        f"{tool}: {report.program!r} "
        f"({report.n_instructions} instructions) — {verdict}"
    ]
    lines.extend(f"  {d}" for d in report.diagnostics)
    return "\n".join(lines)

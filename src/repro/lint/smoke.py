"""Lint-layer smoke test: every target clean, violations caught.

    python -m repro.lint.smoke

Three checks:

1. **Registered targets lint clean** — every program in
   :mod:`repro.lint.targets` (the fault-campaign workloads and every
   classifier pipeline) produces zero diagnostics under the full pass
   pipeline, on all three device technologies.
2. **Violations are caught** — a deliberately malformed program (mixed
   parity, missing preset, self-overwriting gate, no HALT, gate before
   any activation) fires exactly the expected rule ids.
3. **Determinism** — linting the same target twice serialises to
   byte-identical JSON (reports carry no timestamps).

Exit status 0 means the lint subsystem is healthy; wired into
``make lint`` (part of ``make test``).
"""

from __future__ import annotations

import sys

from repro.core.program import Program
from repro.isa.instruction import LogicInstruction, MemoryInstruction
from repro.lint import LintConfig, Linter, TARGETS, lint_program, render


def _bad_program() -> Program:
    """One compact program violating several disciplines at once."""
    program = Program(name="bad")
    # No ACTIVATE anywhere: every masked instruction draws ACT001.
    program.append(MemoryInstruction(op="PRESET0", tile=0, row=9))
    # Mixed input parities (rows 0 and 1).
    program.append(
        LogicInstruction(gate="NAND", tile=0, input_rows=(0, 1), output_row=9)
    )
    # Self-overwriting gate, output parity == input parity, no preset.
    program.append(
        LogicInstruction(gate="NAND", tile=0, input_rows=(0, 2), output_row=2)
    )
    # No HALT.
    return program


def run_smoke() -> int:
    failures: list[str] = []

    # 1. Every registered target lints clean.
    for name, target in sorted(TARGETS.items()):
        program, config = target.build()
        report = lint_program(program, config, name=name)
        if not report.clean:
            failures.append(f"target {name!r} is not clean:\n{render(report)}")
        else:
            print(
                f"lint {name!r}: clean "
                f"({report.n_instructions} instructions)"
            )

    # 2. A malformed program fires the expected rules.
    expected = {"ACT001", "PAR001", "IDEM001", "PAR002", "PRE001", "STRUCT003"}
    report = lint_program(_bad_program(), LintConfig(rows=256, cols=4))
    fired = set(report.rules_fired())
    if not expected <= fired:
        failures.append(
            f"bad program fired {sorted(fired)}, missing "
            f"{sorted(expected - fired)}"
        )
    else:
        print(f"bad program: caught {sorted(fired)}")

    # 3. Deterministic serialisation.
    program, config = TARGETS["adder"].build()
    linter = Linter(config)
    if linter.run(program).to_json() != linter.run(program).to_json():
        failures.append("lint reports are not byte-deterministic")
    else:
        print("reports: byte-deterministic")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    print("lint smoke:", "FAILED" if failures else "ok")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(run_smoke())

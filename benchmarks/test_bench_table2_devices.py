"""Bench E2 — Table II: device parameters and derived gate designs."""

from repro.experiments import table2_devices


def test_table2_regeneration(benchmark, regen):
    rows = regen(benchmark, table2_devices.run)
    assert [r["technology"] for r in rows] == [
        "Modern STT",
        "Projected STT",
        "Projected SHE",
    ]
    # Projected devices: faster, lower current, bigger TMR.
    modern, projected, she = rows
    assert projected["switching_time"] < modern["switching_time"]
    assert projected["switching_current"] < modern["switching_current"]
    assert she["nand_energy"] < projected["nand_energy"] < modern["nand_energy"]
    assert she["nand_margin"] > projected["nand_margin"] > modern["nand_margin"]

"""Throughput benchmarks of the functional substrate itself: tile-level
column-parallel gates, controller microstepping, and the compiler.
Not a paper artifact — a performance guardrail for the simulator."""

import numpy as np

from repro.array.tile import Tile
from repro.compile import arith
from repro.compile.builder import ProgramBuilder
from repro.core.accelerator import Mouse
from repro.devices.parameters import MODERN_STT
from repro.isa.assembler import assemble
from repro.logic.library import NAND


def test_tile_logic_op_throughput(benchmark):
    tile = Tile(MODERN_STT, rows=1024, cols=1024)
    tile.activate_column_range(0, 1023)
    tile.state[0] = np.random.default_rng(0).integers(0, 2, 1024).astype(bool)
    tile.state[2] = np.random.default_rng(1).integers(0, 2, 1024).astype(bool)

    def op():
        tile.preset_row(1, NAND.preset)
        return tile.logic_op(NAND, [0, 2], 1)

    result = benchmark(op)
    assert result.n_columns == 1024


def test_controller_instruction_throughput(benchmark):
    m = Mouse(MODERN_STT, rows=64, cols=64)
    m.load(
        assemble(
            """
            ACTIVATE t0 cols 0..63
            PRESET0  t0 row 1
            NAND     t0 in 0,2 out 1
            HALT
            """
        )
    )

    def run():
        m.reset_for_rerun()
        m.run()
        return m

    machine = benchmark(run)
    assert machine.controller.halted


def test_compiler_multiply_emission(benchmark):
    def emit():
        b = ProgramBuilder(rows=2048, cols=8, reserved_rows=32)
        b.activate((0,))
        x = b.alloc_word(8)
        y = b.alloc_word(8)
        arith.multiply(b, x, y)
        return b.finish()

    program = benchmark(emit)
    assert len(program) > 1000

"""Hot-path micro-ops under pytest-benchmark (PR 4 perf layer).

Unlike the experiment-regeneration benchmarks in this suite, these time
the simulator's inner loops: one cached-kernel gate execution, the
controller microstep loop, a harvested replay, and the batch-64
lock-step classifiers.  Every op with a baseline re-asserts its speedup
floor here, measured against the scalar/serial referee in the same run
— the ratio is machine-independent even though the ns/op is not.
"""

import pytest

from repro.perf import bench as hotpath


def test_logic_op(regen, benchmark):
    result = regen(benchmark, hotpath.bench_logic_op, True)
    assert result.speedup >= 5.0


def test_step_instruction(regen, benchmark):
    result = regen(benchmark, hotpath.bench_step_instruction, True)
    assert result.ns_per_op > 0


def test_intermittent_replay(regen, benchmark):
    result = regen(benchmark, hotpath.bench_intermittent_replay, True)
    assert result.ns_per_op > 0


def test_classify_svm_batch64(regen, benchmark):
    result = regen(benchmark, hotpath.bench_classify_svm, True)
    assert result.speedup >= 10.0


def test_classify_bnn_batch64(regen, benchmark):
    result = regen(benchmark, hotpath.bench_classify_bnn, True)
    assert result.speedup >= 10.0

"""Bench E1 — Table I: the interrupted-AND case analysis."""

from repro.experiments import table1_idempotency


def test_table1_regeneration(benchmark, regen):
    results = regen(benchmark, table1_idempotency.run)
    assert len(results) == 4
    assert all(case.correct for case in results)
    unreachable = [r for r in results if not r.reachable]
    assert len(unreachable) == 1
    assert unreachable[0].should_switch is False
    assert unreachable[0].switched_before_interrupt is True

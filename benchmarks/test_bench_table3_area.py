"""Bench E3 — Table III: area per benchmark and configuration."""

import pytest

from repro.experiments import table3_area


def test_table3_regeneration(benchmark, regen):
    rows = regen(benchmark, table3_area.run)
    assert len(rows) == 6
    by_name = {r["benchmark"]: r for r in rows}

    # Paper-matched cells (capacity agrees) within 5 %.
    for name, (cap, modern, projected, she) in table3_area.PAPER_AREAS.items():
        row = by_name[name]
        if row["capacity_mb"] == cap:
            assert row["modern_stt"] == pytest.approx(modern, rel=0.05)
            assert row["projected_stt"] == pytest.approx(projected, rel=0.05)
            assert row["she"] == pytest.approx(she, rel=0.05)

    # Structural shape: SHE ~ 2x projected STT < modern STT everywhere.
    for row in rows:
        assert row["she"] == pytest.approx(2 * row["projected_stt"], rel=0.02)
        assert row["projected_stt"] < row["modern_stt"] < row["she"]

"""Bench — Table IV accuracy column on the synthetic dataset twins.

Checks the structural accuracy claims: the integer (MOUSE) pipeline
tracks the float models, and binarising MNIST costs only a modest
accuracy delta (paper: 97.55 -> 97.37 on the real set).
"""

from repro.experiments import accuracy


def test_accuracy_regeneration(benchmark, regen):
    rows = regen(benchmark, accuracy.run, fast=True)
    by_name = {r.benchmark: r for r in rows}
    assert set(by_name) == {
        "SVM MNIST",
        "SVM MNIST (Bin)",
        "SVM HAR",
        "SVM ADULT",
        "BNN FINN-x0.125",
        "BNN FP-BNN-x0.125",
    }

    for row in rows:
        # Every model clearly beats chance on its synthetic twin.
        chance = 1.0 / (2 if "ADULT" in row.benchmark else 10 if "MNIST" in row.benchmark or "BNN" in row.benchmark else 6)
        assert row.float_accuracy > chance + 0.15, row.benchmark
        # The integer pipeline tracks the float model.
        assert abs(row.int_accuracy - row.float_accuracy) < 0.15, row.benchmark

    # Binarisation costs only a bounded accuracy delta.
    delta = (
        by_name["SVM MNIST"].float_accuracy
        - by_name["SVM MNIST (Bin)"].float_accuracy
    )
    assert delta < 0.25

    # Support-vector counts reported for every SVM row.
    for name in ("SVM MNIST", "SVM MNIST (Bin)", "SVM HAR", "SVM ADULT"):
        assert by_name[name].n_support > 0

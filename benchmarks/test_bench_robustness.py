"""Bench — device-variation robustness Monte Carlo."""

from repro.experiments import robustness


def test_robustness_regeneration(benchmark, regen):
    rows = regen(benchmark, robustness.run, trials=50_000)
    by_key = {(r.technology, r.gate): r for r in rows}

    # Modern STT's AND gate (smallest design margin) is the first to
    # fail; SHE tolerates the most spread on every gate.
    assert by_key[("Modern STT", "AND")].error_at_5pct > 0.01
    for gate in ("NOT", "NAND", "AND"):
        assert (
            by_key[("Projected SHE", gate)].tolerated_sigma
            >= by_key[("Projected STT", gate)].tolerated_sigma
            > by_key[("Modern STT", gate)].tolerated_sigma
        )

"""Benchmark-suite configuration.

Each module regenerates one paper table/figure (see DESIGN.md's
experiment index) under pytest-benchmark, asserting the paper's
qualitative shape on the produced data.  Heavy regenerations run with
``rounds=1`` — the timing of interest is "how long does the experiment
take to regenerate", not micro-op throughput.
"""

import pytest


def one_shot(benchmark, fn, *args, **kwargs):
    """Run a regeneration exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def regen():
    return one_shot

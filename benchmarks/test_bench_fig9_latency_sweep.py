"""Bench E5 — Figure 9: latency vs power-source sweep."""

import numpy as np

from repro.devices.parameters import ALL_TECHNOLOGIES, MODERN_STT
from repro.experiments import fig9_latency_sweep


def test_fig9_regeneration(benchmark, regen):
    powers = tuple(float(p) for p in np.geomspace(60e-6, 5e-3, 5))
    points = regen(
        benchmark,
        fig9_latency_sweep.run,
        powers=powers,
        technologies=ALL_TECHNOLOGIES,
        include_sonic=True,
    )
    techs = {p.technology for p in points}
    assert techs == {
        "Modern STT",
        "Projected STT",
        "Projected SHE",
        "SONIC (MSP430)",
    }

    # Monotone: more power, less latency — every series.
    for tech in techs:
        for bench in {p.benchmark for p in points if p.technology == tech}:
            series = sorted(
                (
                    p
                    for p in points
                    if p.technology == tech and p.benchmark == bench
                ),
                key=lambda p: p.power_w,
            )
            lats = [p.latency_s for p in series]
            assert lats == sorted(lats, reverse=True), (tech, bench)

    # Configuration ordering at the scarce end: SHE < Projected < Modern.
    for bench in {p.benchmark for p in points if p.technology == MODERN_STT.name}:
        at_60uw = {
            p.technology: p.latency_s
            for p in points
            if p.benchmark == bench and p.power_w == powers[0]
        }
        assert (
            at_60uw["Projected SHE"]
            < at_60uw["Projected STT"]
            < at_60uw["Modern STT"]
        )

    # MOUSE beats SONIC "even with a much lower power budget": the
    # 60 uW MOUSE run finishes before the 5 mW SONIC run.
    mouse_60 = next(
        p.latency_s
        for p in points
        if p.technology == MODERN_STT.name
        and p.benchmark == "SVM MNIST"
        and p.power_w == powers[0]
    )
    sonic_5m = next(
        p.latency_s
        for p in points
        if p.technology == "SONIC (MSP430)"
        and p.benchmark == "MNIST"
        and p.power_w == powers[-1]
    )
    assert mouse_60 < sonic_5m * 10  # within the same regime
    sonic_60 = next(
        p.latency_s
        for p in points
        if p.technology == "SONIC (MSP430)"
        and p.benchmark == "MNIST"
        and p.power_w == powers[0]
    )
    assert mouse_60 < sonic_60 / 10

"""Bench E6-E9 — Figures 10-12: Backup/Dead/Restore breakdown at 60 uW,
plus the Section IX prose percentage claims."""

from repro.experiments import breakdown


def test_breakdown_regeneration(benchmark, regen):
    rows = regen(benchmark, breakdown.run, source_watts=60e-6)
    assert len(rows) == 18  # 3 technologies x 6 benchmarks

    shares = breakdown.average_shares(rows)

    # E9: Dead share shrinks with energy efficiency (paper: 7.4% Modern,
    # 2.52% Projected STT, 0.61% SHE on average).
    assert (
        shares["Modern STT"]["dead_energy_pct"]
        > shares["Projected STT"]["dead_energy_pct"]
        > shares["Projected SHE"]["dead_energy_pct"]
    )
    assert shares["Modern STT"]["dead_energy_pct"] < 15
    assert shares["Projected SHE"]["dead_energy_pct"] < 1

    # Dead latency stays far below its energy share (latency is
    # recharge-dominated): paper reports < 0.5% everywhere.
    for tech in shares:
        assert shares[tech]["dead_latency_pct"] < 0.5

    # Restore and Backup are sub-percent on average for every config.
    for tech in shares:
        assert shares[tech]["restore_energy_pct"] < 1
        assert shares[tech]["backup_energy_pct"] < 1

    # Per-benchmark totals dominated by forward progress.
    for row in rows:
        overhead = (
            row.breakdown.dead_energy
            + row.breakdown.restore_energy
            + row.breakdown.backup_energy
        )
        assert overhead < 0.2 * row.breakdown.total_energy

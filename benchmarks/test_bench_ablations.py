"""Bench — ablation studies for DESIGN.md's called-out design choices."""

from repro.experiments import ablations


def test_adder_ablation(benchmark, regen):
    rows = regen(benchmark, ablations.adders)
    for row in rows:
        assert row.min3_instructions == row.nand_instructions  # parity wash
        assert row.min3_energy < row.nand_energy


def test_power_budget_ablation(benchmark, regen):
    points = regen(benchmark, ablations.power_budget)
    assert points[0].serial_latency > points[-1].serial_latency
    for p in points:
        assert p.average_power <= p.budget_watts * 1.05


def test_checkpoint_ablation(benchmark, regen):
    points = regen(benchmark, ablations.checkpoint_frequency)
    energies = [p.total_energy for p in points]
    # The paper's every-instruction checkpointing is optimal at 60 uW.
    assert energies[0] == min(energies)


def test_issue_strategy_ablation(benchmark, regen):
    rows = regen(benchmark, ablations.issue_strategy)
    for row in rows:
        assert 1.0 < row.speedup < 5.0


def test_capacitor_ablation(benchmark, regen):
    points = regen(benchmark, ablations.capacitor_sizing)
    restarts = [p.restarts for p in points]
    assert restarts == sorted(restarts, reverse=True)

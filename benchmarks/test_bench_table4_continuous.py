"""Bench E4 — Table IV: the continuous-power comparison."""

from repro.experiments import table4_continuous


def test_table4_regeneration(benchmark, regen):
    rows = regen(benchmark, table4_continuous.run)
    mouse = {r.benchmark: r for r in rows if r.system == "MOUSE"}
    cpu = {r.benchmark: r for r in rows if r.system == "CPU"}
    libsvm = {r.benchmark: r for r in rows if r.system == "libSVM"}
    sonic = {r.benchmark: r for r in rows if r.system == "SONIC"}

    assert len(mouse) == 6 and len(cpu) == 4 and len(libsvm) == 4 and len(sonic) == 2

    # Headline: MOUSE energy advantage of orders of magnitude.
    for bench, cpu_row in cpu.items():
        assert mouse[bench].energy_uj * 100 < cpu_row.energy_uj
    for bench, lib_row in libsvm.items():
        assert mouse[bench].energy_uj * 50 < lib_row.energy_uj
    assert mouse["SVM MNIST"].energy_uj * 5 < sonic["MNIST"].energy_uj

    # MOUSE latency is competitive (beats the CPU R implementation and
    # SONIC on every shared benchmark).
    for bench, cpu_row in cpu.items():
        assert mouse[bench].latency_us < cpu_row.latency_us
    assert mouse["SVM MNIST"].latency_us < sonic["MNIST"].latency_us / 10

    # Within-MOUSE ordering: binarised MNIST beats full MNIST on both
    # axes (the Section IX binarisation claim).
    assert (
        mouse["SVM MNIST (Bin)"].energy_uj < mouse["SVM MNIST"].energy_uj / 10
    )
    assert mouse["SVM MNIST (Bin)"].latency_us < mouse["SVM MNIST"].latency_us

    # Every MOUSE row lands within an order of magnitude of the paper.
    for bench, row in mouse.items():
        assert 0.1 < row.latency_us / row.paper_latency_us < 10
        assert 0.1 < row.energy_uj / row.paper_energy_uj < 10

"""SVM on MOUSE, end to end.

1. Train a polynomial-degree-2 SVM (from-scratch SMO) on the synthetic
   ADULT census twin — the paper's smallest benchmark.
2. Quantise one kernel evaluation to the integer pipeline and compile
   it to a MOUSE program: dot product, +offset, square — bit-exact on
   the functional simulator.
3. Price the full paper-scale benchmark (1,909 support vectors) with
   the workload cost model: Table IV-style latency/energy and the
   behaviour under a 60 uW harvester.

Run:  python examples/svm_inference.py
"""

import numpy as np

from repro.compile import arith
from repro.compile.dot import emit_dot_product
from repro.compile.builder import ProgramBuilder
from repro.core.accelerator import Mouse
from repro.devices.parameters import MODERN_STT
from repro.energy.model import InstructionCostModel
from repro.harvest import HarvestingConfig, ProfileRun
from repro.ml.benchmarks import SVM_ADULT
from repro.ml.datasets import synthetic_adult
from repro.ml.svm import PolySVM


def train():
    ds = synthetic_adult(300, 100)
    svm = PolySVM(c=1.0, max_iter=80)
    svm.fit(ds.x_train.astype(float), ds.y_train.astype(float) * 2 - 1)
    accuracy = np.mean(svm.predict(ds.x_test.astype(float)) == ds.y_test)
    print(f"trained poly-2 SVM: {svm.n_support_} support vectors, "
          f"test accuracy {accuracy * 100:.1f}% (synthetic ADULT twin)")
    return ds, svm


def kernel_on_mouse(x, sv, offset, bits=4):
    """Compile one (truncated) kernel evaluation and run it in-array."""
    builder = ProgramBuilder(tile=0, rows=2048, cols=1, reserved_rows=64)
    builder.activate((0,))
    rows = iter(range(0, 64, 2))
    xs = [builder.word_at([next(rows) for _ in range(bits)]) for _ in x]
    ws = [builder.word_at([next(rows) for _ in range(bits)]) for _ in sv]
    # The offset operand must live in *reserved* rows: scratch rows are
    # recycled by the compiler, so anything pre-loaded there would be
    # clobbered by preset writes during execution.
    off_bits = max(1, int(offset).bit_length())
    off = builder.word_at([next(rows) for _ in range(off_bits)])
    dot = emit_dot_product(builder, xs, ws)
    shifted = arith.ripple_add(builder, dot, off)
    kernel = arith.square(builder, shifted)
    program = builder.finish()

    machine = Mouse(MODERN_STT, rows=2048, cols=1)
    for word, value in zip(xs, x):
        for i, bit in enumerate(word):
            machine.tile(0).set_bit(bit.row, 0, (int(value) >> i) & 1)
    for word, value in zip(ws, sv):
        for i, bit in enumerate(word):
            machine.tile(0).set_bit(bit.row, 0, (int(value) >> i) & 1)
    for i, bit in enumerate(off):
        machine.tile(0).set_bit(bit.row, 0, (int(offset) >> i) & 1)
    machine.load(program)
    result = machine.run()
    value = 0
    for i, bit in enumerate(kernel):
        value |= machine.tile(0).get_bit(bit.row, 0) << i
    return value, result


def multiclass_on_mouse():
    """A complete 3-class one-vs-rest classifier — dot products,
    squaring, signed coefficients, per-class scores, and the argmax —
    as ONE MOUSE program with the class index read out of the array."""
    from repro.compile.classifier import (
        CompiledMulticlassSvm,
        compile_multiclass_svm,
    )

    compiled = compile_multiclass_svm(
        n_classes=3, n_support_per_class=2, dimensions=2
    )
    rng = np.random.default_rng(7)
    sv = [rng.integers(0, 8, size=(2, 2)) for _ in range(3)]
    coef = [rng.integers(-4, 4, size=2) for _ in range(3)]
    offsets = [1, 2, 0]
    machine = compiled.machine(sv, coef, offsets)
    x = rng.integers(0, 8, size=2)
    compiled.set_input(machine, x)
    machine.run(max_instructions=100_000_000)
    predicted = compiled.predict(machine)
    reference = CompiledMulticlassSvm.reference_prediction(x, sv, coef, offsets)
    print(f"  {len(compiled.program):,} instructions; per-class scores "
          f"{compiled.read_scores(machine)}")
    print(f"  in-array argmax -> class {predicted}; python reference "
          f"{reference} [{'ok' if predicted == reference else 'WRONG'}]")


def main() -> None:
    _, _ = train()

    print("\n== one kernel evaluation, bit-exact in the array ==")
    rng = np.random.default_rng(0)
    x = rng.integers(0, 8, size=3)
    sv = rng.integers(0, 8, size=3)
    offset = 2
    got, result = kernel_on_mouse(x, sv, offset)
    expected = (int(np.dot(x, sv)) + offset) ** 2
    print(f"  (x . sv + {offset})^2 with x={x.tolist()}, sv={sv.tolist()}: "
          f"MOUSE={got}, python={expected} "
          f"[{'ok' if got == expected else 'WRONG'}]")
    print(f"  {result.instructions} instructions, "
          f"{result.energy * 1e12:.1f} pJ")

    print("\n== a complete 3-class classifier, argmax in-array ==")
    multiclass_on_mouse()

    print("\n== paper-scale SVM ADULT on the cost model ==")
    cost = InstructionCostModel(MODERN_STT)
    profile = SVM_ADULT.profile(cost)
    latency, energy = SVM_ADULT.continuous(cost)
    print(f"  {profile.instructions:,} instructions; continuous power: "
          f"{latency * 1e6:.0f} us, {energy * 1e6:.2f} uJ "
          f"(paper: 1,189 us, 7.24 uJ)")
    print(f"  memory: {SVM_ADULT.capacity_mb()} MB "
          f"-> {SVM_ADULT.area_mm2(MODERN_STT):.2f} mm^2 "
          f"(paper: 1 MB, 0.71 mm^2)")

    breakdown = ProfileRun(
        profile, cost, HarvestingConfig.paper(MODERN_STT, 60e-6)
    ).run()
    print(f"  @60 uW harvester: {breakdown.total_latency * 1e3:.1f} ms, "
          f"{breakdown.restarts} restarts, "
          f"dead={breakdown.dead_energy / breakdown.total_energy * 100:.2f}% "
          f"of energy")


if __name__ == "__main__":
    main()

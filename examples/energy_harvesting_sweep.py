"""Energy-harvesting sweep: the Figure 9 story in one script.

Sweeps the harvested power from a body-heat thermoelectric level
(60 uW) to SONIC's RF harvester (5 mW) for a chosen benchmark across
the three MOUSE configurations and SONIC, printing latency, restart
counts, and the Backup/Dead/Restore shares — the paper's Figures 9-12
as one table each.

Run:  python examples/energy_harvesting_sweep.py [benchmark]
      (default benchmark: "SVM MNIST (Bin)")
"""

import sys

import numpy as np

from repro.baselines.sonic import SONIC_MNIST
from repro.devices.parameters import ALL_TECHNOLOGIES
from repro.energy.model import InstructionCostModel
from repro.harvest import HarvestingConfig, ProfileRun
from repro.ml.benchmarks import workload_by_name

POWERS = tuple(float(p) for p in np.geomspace(60e-6, 5e-3, 6))


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "SVM MNIST (Bin)"
    workload = workload_by_name(name)
    print(f"benchmark: {workload.name}")
    print(f"{'power':>8s}  {'config':14s} {'latency':>12s} {'restarts':>8s} "
          f"{'dead%':>7s} {'restore%':>8s} {'backup%':>8s}")
    for tech in ALL_TECHNOLOGIES:
        cost = InstructionCostModel(tech)
        profile = workload.profile(cost)
        for power in POWERS:
            config = HarvestingConfig.paper(tech, power)
            b = ProfileRun(profile, cost, config).run()
            total = b.total_energy
            print(f"{power * 1e6:6.0f}uW  {tech.name:14s} "
                  f"{b.total_latency * 1e3:10.2f}ms {b.restarts:8d} "
                  f"{b.dead_energy / total * 100:6.2f}% "
                  f"{b.restore_energy / total * 100:7.2f}% "
                  f"{b.backup_energy / total * 100:7.3f}%")
        print()

    print("SONIC (MSP430) reference on MNIST:")
    for power in POWERS:
        b = SONIC_MNIST.run(power)
        print(f"{power * 1e6:6.0f}uW  {'SONIC':14s} "
              f"{b.total_latency * 1e3:10.1f}ms {b.restarts:8d}")


if __name__ == "__main__":
    main()

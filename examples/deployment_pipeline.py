"""A deployed batteryless device, end to end (paper Section IV-E).

The full loop MOUSE is designed for: a sensor deposits samples into its
non-volatile buffer; the program's transfer prologue pulls them in with
ordinary READ/WRITE instructions; the inference body computes in-array;
results are read out for the transmitter — under a starving energy
harvester, with sensor corruption injected mid-transfer to exercise the
rewind protocol.

Also shows the model-to-cost-model glue: a *trained* SVM priced through
the workload mapping (`SvmWorkload.from_model`).

Run:  python examples/deployment_pipeline.py
"""

import numpy as np

from repro.core.program import Program
from repro.core.accelerator import Mouse
from repro.devices.parameters import MODERN_STT
from repro.energy.model import InstructionCostModel
from repro.harvest import HarvestingConfig
from repro.harvest.capacitor import EnergyBuffer
from repro.harvest.source import ConstantPowerSource
from repro.isa.assembler import assemble
from repro.ml.datasets import synthetic_adult
from repro.ml.mapping import SvmWorkload
from repro.ml.svm import OneVsRestSVM
from repro.system import SensorDrivenPipeline, transfer_prologue


def build_device():
    """A tiny 'activity detector': NAND over two sensor channels."""
    mouse = Mouse(MODERN_STT, rows=16, cols=8)
    program = Program(transfer_prologue(3))  # rows 0..2 from the sensor
    program.extend(
        assemble(
            """
            ACTIVATE t0 cols 0,1,2,3
            PRESET0  t0 row 3
            NAND     t0 in 0,2 out 3
            HALT
            """
        )
    )
    mouse.load(program)
    return mouse


def main() -> None:
    print("== sensor -> inference -> readout, under a starving harvester ==")
    mouse = build_device()
    pipeline = SensorDrivenPipeline(
        mouse=mouse,
        result_rows=[(3, c) for c in range(4)],
        harvesting=HarvestingConfig(
            source=ConstantPowerSource(2e-9),
            buffer=EnergyBuffer(capacitance=100e-6, v_off=0.00030, v_on=0.00034),
        ),
    )
    rng = np.random.default_rng(0)
    samples = []
    for _ in range(3):
        sample = np.zeros((3, 8), dtype=bool)
        sample[0, :4] = rng.integers(0, 2, 4)
        sample[2, :4] = rng.integers(0, 2, 4)
        samples.append(sample)
    for outcome in pipeline.process(samples):
        print(
            f"  sample {outcome.sample_index}: result={outcome.result_bits} "
            f"restarts={outcome.breakdown.restarts} "
            f"charging={outcome.breakdown.charging_latency * 1e3:.1f} ms"
        )

    print("\n== sensor corruption mid-transfer (valid-bit protocol) ==")
    mouse = build_device()
    pipeline = SensorDrivenPipeline(
        mouse=mouse,
        result_rows=[(3, c) for c in range(4)],
        corruption_rate=1.0,  # corrupt every sample's first transfer
    )
    for outcome in pipeline.process(samples):
        print(
            f"  sample {outcome.sample_index}: retransfers="
            f"{outcome.retransfers}, result={outcome.result_bits}"
        )

    print("\n== pricing a *trained* model with the cost model ==")
    ds = synthetic_adult(200, 50)
    model = OneVsRestSVM(2, c=1.0, max_iter=40)
    model.fit(ds.x_train.astype(float), ds.y_train)
    workload = SvmWorkload.from_model(model, name="ADULT (as trained)")
    cost = InstructionCostModel(MODERN_STT)
    latency, energy = workload.continuous(cost)
    print(
        f"  {model.total_support_vectors} support vectors -> "
        f"{workload.capacity_mb()} MB, {workload.area_mm2(MODERN_STT):.2f} mm^2, "
        f"{latency * 1e6:.0f} us, {energy * 1e6:.2f} uJ per inference"
    )


if __name__ == "__main__":
    main()

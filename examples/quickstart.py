"""Quickstart: build a MOUSE machine, run in-memory logic, survive a
power outage.

This walks the core loop of the paper in ~60 lines:

1. assemble a tiny program (activate columns, preset, one NAND gate);
2. run it on the functional simulator under continuous power;
3. run the same program under a starving energy harvester that forces
   dozens of unexpected outages — and observe the bit-identical result
   plus the Backup / Dead / Restore breakdown.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import MODERN_STT, Mouse
from repro.harvest import HarvestingConfig, IntermittentRun
from repro.harvest.capacitor import EnergyBuffer
from repro.harvest.source import ConstantPowerSource
from repro.isa import assemble

PROGRAM = """
ACTIVATE t0 cols 0,1,2,3     ; the SIMD dimension: 4 columns at once
PRESET0  t0 row 1            ; NAND's output row must be preset to 0
NAND     t0 in 0,4 out 1     ; one gate, executed in all active columns
HALT
"""

CASES = [(1, 1), (1, 0), (0, 1), (0, 0)]


def build_machine() -> Mouse:
    machine = Mouse(MODERN_STT, n_data_tiles=1, rows=16, cols=8)
    machine.load(assemble(PROGRAM))
    for col, (a, b) in enumerate(CASES):
        machine.tile(0).set_bit(0, col, a)  # input row 0
        machine.tile(0).set_bit(4, col, b)  # input row 4
    return machine


def main() -> None:
    print("== continuous power ==")
    machine = build_machine()
    result = machine.run()
    outputs = [machine.tile(0).get_bit(1, c) for c in range(4)]
    for (a, b), out in zip(CASES, outputs):
        print(f"  NAND({a}, {b}) = {out}")
    print(f"  {result.instructions} instructions, "
          f"{result.energy * 1e12:.1f} pJ, {result.latency * 1e9:.0f} ns")
    reference = machine.bank.snapshot()

    print("\n== starving energy harvester (nanowatt source) ==")
    machine = build_machine()
    config = HarvestingConfig(
        source=ConstantPowerSource(1e-9),
        buffer=EnergyBuffer(capacitance=100e-6, v_off=0.00030, v_on=0.00034),
    )
    breakdown = IntermittentRun(machine, config).run()
    same = all(
        np.array_equal(a, b) for a, b in zip(machine.bank.snapshot(), reference)
    )
    print(f"  restarts: {breakdown.restarts} (all unexpected)")
    print(f"  final memory identical to continuous run: {same}")
    print(f"  total latency: {breakdown.total_latency * 1e3:.1f} ms "
          f"({breakdown.charging_latency * 1e3:.1f} ms spent recharging)")
    print(f"  energy breakdown: compute {breakdown.compute_energy * 1e12:.2f} pJ, "
          f"backup {breakdown.backup_energy * 1e12:.2f} pJ, "
          f"dead {breakdown.dead_energy * 1e12:.2f} pJ, "
          f"restore {breakdown.restore_energy * 1e12:.2f} pJ")
    assert same, "intermittent execution must be bit-identical"


if __name__ == "__main__":
    main()

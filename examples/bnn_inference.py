"""BNN on MOUSE, end to end.

1. Train a (scaled) FINN-topology binary network on the synthetic MNIST
   twin with the straight-through estimator.
2. Compile one hidden neuron — XNOR, popcount, integer threshold — to a
   MOUSE program and verify it fires exactly like the Python model.
3. Price the paper-scale FINN and FP-BNN benchmarks and show the
   binarisation/precision trade-off of Table IV.

Run:  python examples/bnn_inference.py
"""

import math

import numpy as np

from repro.compile import arith
from repro.compile.dot import emit_binary_dot
from repro.compile.builder import ProgramBuilder
from repro.core.accelerator import Mouse
from repro.devices.parameters import MODERN_STT
from repro.energy.model import InstructionCostModel
from repro.ml.benchmarks import BNN_FINN, BNN_FPBNN
from repro.ml.bnn import BNN, FINN_MNIST
from repro.ml.datasets import binarize, synthetic_mnist


def train():
    ds = synthetic_mnist(400, 150)
    config = FINN_MNIST.scaled(0.0625)  # 64-neuron hiddens for speed
    bnn = BNN(config, seed=0)
    bnn.fit(binarize(ds.x_train), ds.y_train, epochs=12)
    x_test = binarize(ds.x_test)
    print(f"trained {config.name}: float accuracy "
          f"{bnn.accuracy(x_test, ds.y_test) * 100:.1f}%, integer pipeline "
          f"{bnn.accuracy_int(x_test, ds.y_test) * 100:.1f}% "
          f"(agreement {np.mean(bnn.predict(x_test) == bnn.predict_int(x_test)) * 100:.0f}%)")
    return bnn


def neuron_on_mouse(bnn: BNN, x_bits: np.ndarray, neuron: int) -> int:
    """Compile one hidden neuron of the first layer and fire it."""
    weights = bnn.binary_weights()[0][:, neuron]
    threshold = int(bnn.hidden_thresholds()[0][neuron])
    n = len(weights)
    chunk = 16  # keep the demo snappy: use the first 16 synapses
    weights, x_bits = weights[:chunk], x_bits[:chunk]
    # Rescale the threshold for the chunk (demo only).
    threshold = max(0, min(chunk, threshold - (n - chunk) // 2))

    builder = ProgramBuilder(tile=0, rows=2048, cols=1, reserved_rows=80)
    builder.activate((0,))
    rows = iter(range(0, 80, 2))
    xw = builder.word_at([next(rows) for _ in range(chunk)])
    ww = builder.word_at([next(rows) for _ in range(chunk)])
    # The threshold operand lives in reserved rows: pre-loaded values in
    # scratch rows would be clobbered by the compiler's preset writes.
    thr = builder.word_at([next(rows) for _ in range(5)])
    count = emit_binary_dot(builder, xw, ww)
    fire = arith.greater_equal(builder, count, thr)
    program = builder.finish()

    machine = Mouse(MODERN_STT, rows=2048, cols=1)
    for i, bit in enumerate(xw):
        machine.tile(0).set_bit(bit.row, 0, int(x_bits[i]))
    for i, bit in enumerate(ww):
        machine.tile(0).set_bit(bit.row, 0, int(weights[i]))
    for i, bit in enumerate(thr):
        machine.tile(0).set_bit(bit.row, 0, (threshold >> i) & 1)
    machine.load(program)
    machine.run()
    popcount = sum(
        machine.tile(0).get_bit(bit.row, 0) << i for i, bit in enumerate(count)
    )
    fired = machine.tile(0).get_bit(fire.row, 0)
    reference = int(
        sum(1 for a, w in zip(x_bits, weights) if a == w) >= threshold
    )
    return popcount, fired, reference


def full_network_on_mouse():
    """Hidden layer (neurons in columns) -> output layer (argmax
    in-array): a complete binary network, class index read from the
    array."""
    from repro.compile.classifier import (
        CompiledBnnOutput,
        compile_bnn_layer,
        compile_bnn_output,
    )

    rng = np.random.default_rng(2)
    hidden = compile_bnn_layer(fan_in=8, n_neurons=4)
    w1 = rng.integers(0, 2, size=(8, 4))
    t1 = rng.integers(2, 7, size=4)
    layer_machine = hidden.machine(w1, t1)
    x = rng.integers(0, 2, size=8)
    hidden.set_input(layer_machine, x)
    layer_machine.run()
    activations = hidden.read_fires(layer_machine)

    output = compile_bnn_output(fan_in=4, n_classes=3)
    w2 = rng.integers(0, 2, size=(4, 3))
    b2 = rng.integers(0, 4, size=3)
    out_machine = output.machine(w2, b2)
    output.set_input(out_machine, activations)
    out_machine.run(max_instructions=10_000_000)
    predicted = output.predict(out_machine)
    reference = CompiledBnnOutput.reference_prediction(activations, w2, b2)
    print(f"  hidden fires: {activations.tolist()}; in-array argmax -> "
          f"class {predicted} (python: {reference}) "
          f"[{'ok' if predicted == reference else 'WRONG'}]")


def main() -> None:
    bnn = train()

    print("\n== one neuron, in-array xnor/popcount/threshold ==")
    rng = np.random.default_rng(4)
    x_bits = rng.integers(0, 2, size=784)
    popcount, fired, reference = neuron_on_mouse(bnn, x_bits, neuron=0)
    print(f"  popcount(xnor) = {popcount}, fires = {fired}, "
          f"python reference = {reference} "
          f"[{'ok' if fired == reference else 'WRONG'}]")

    print("\n== a complete binary network, layer + argmax in-array ==")
    full_network_on_mouse()

    print("\n== paper-scale BNNs on the cost model (Modern STT) ==")
    cost = InstructionCostModel(MODERN_STT)
    for workload, paper in ((BNN_FINN, (1485, 14.33)), (BNN_FPBNN, (2007, 99.9))):
        latency, energy = workload.continuous(cost)
        print(f"  {workload.name}: {latency * 1e6:.0f} us, "
              f"{energy * 1e6:.2f} uJ  (paper: {paper[0]} us, {paper[1]} uJ); "
              f"{workload.capacity_mb()} MB")
    finn = BNN_FINN.continuous(cost)
    fpbnn = BNN_FPBNN.continuous(cost)
    print(f"  8-bit inputs cost {fpbnn[1] / finn[1]:.1f}x the energy of the "
          f"fully-binarised network (paper: ~7x)")


if __name__ == "__main__":
    main()

.PHONY: install test trace-smoke faults-smoke bench experiments export examples all

install:
	pip install -e . --no-build-isolation

test: trace-smoke faults-smoke
	pytest tests/

trace-smoke:
	PYTHONPATH=src python -m repro.obs.smoke

faults-smoke:
	PYTHONPATH=src python -m repro.faults.smoke

bench:
	pytest benchmarks/ --benchmark-only

experiments:
	python -m repro all

export:
	python -m repro export results

examples:
	python examples/quickstart.py
	python examples/application_mapping.py
	python examples/svm_inference.py
	python examples/bnn_inference.py
	python examples/energy_harvesting_sweep.py
	python examples/deployment_pipeline.py

all: test bench experiments

.PHONY: install test lint lint-smoke verify-smoke obs-smoke trace-smoke faults-smoke bench-smoke compiled-smoke crash-smoke harden-smoke env-smoke bench experiments export examples all

install:
	pip install -e . --no-build-isolation

test: obs-smoke faults-smoke bench-smoke compiled-smoke crash-smoke harden-smoke env-smoke lint verify-smoke
	pytest tests/

# Static checks: the CRAM program linter over every registered target,
# then ruff/mypy over the Python sources when they are installed (the
# container image does not ship them; CI does).
lint: lint-smoke
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests; \
	else \
		echo "ruff not installed; skipping Python style check"; \
	fi
	@if command -v mypy >/dev/null 2>&1; then \
		mypy src/repro; \
	else \
		echo "mypy not installed; skipping type check"; \
	fi

lint-smoke:
	PYTHONPATH=src python -m repro.lint.smoke

# Verification gate: every Table IV workload symbolically proven
# equivalent to its golden reference (and replay-safe), every hardened
# rewrite proven equivalent to its source at levels 0/0.5/1, and the
# seeded-miscompilation corpus (>= 10 structurally-green mutants) all
# refuted by the SEM/REEX provers.
verify-smoke:
	PYTHONPATH=src python -m repro.verify.smoke

# Observability gate: the traced SVM-kernel run plus profiler
# attribution (bit-exact vs the Breakdown), flamegraph lint, checkpoint
# counters, and one live /metrics scrape.  `trace-smoke` is the
# pre-profiler alias.
obs-smoke:
	PYTHONPATH=src python -m repro.obs.smoke

trace-smoke: obs-smoke

faults-smoke:
	PYTHONPATH=src python -m repro.faults.smoke

# Hot-path gate: quick microbenchmarks with in-run baselines; asserts
# the speedup floors (incl. the compiled-plan executors), fails on a
# >2x ratio regression against the checked-in BENCH_PR9.json, then
# refreshes it.
bench-smoke:
	PYTHONPATH=src python -m repro.perf.smoke

# Compiled-executor gate: every verify target's AOT plan symbolically
# proven equivalent to its source (EquivalencePass), campaign workloads
# + fused ProfileRun byte-identical compiled vs interpreted, the
# compiled path demonstrably taken, and the >= 10x interpreter speedup
# floor held.
compiled-smoke:
	PYTHONPATH=src python -m repro.compilejit.smoke

# Hardening gate: tiny protection-frontier sweep (BNN, Modern STT);
# asserts the proven SDC bound dominates the measured rate, full
# hardening cuts measured SDC >= 10x, the hardened program lints clean
# (incl. the SDC pass), the report is byte-reproducible, and the
# energy-overhead cost has not regressed vs BENCH_PR7.json.
harden-smoke:
	PYTHONPATH=src python -m repro.harden.smoke

# Durability gate: 200+ seeded SIGKILLs (instruction boundaries and
# mid-image-write) across SVM and BNN intermittent runs, torn/corrupt
# generation fuzzing, NVImage schema validation — every resumed report
# must be byte-identical to the uninterrupted run.
crash-smoke:
	PYTHONPATH=src python -m repro.durability.smoke

# Environment gate: constant-trace Breakdowns byte-identical to the
# constant source (all technologies, interpreted + fused), emergent
# outages from a scarce solar trace, adaptive >= fixed inferences per
# trace family with degraded-mode tallies, SIGKILL+resume under a
# fluctuating trace byte-identical, trace JSONL round trip exact.
env-smoke:
	PYTHONPATH=src python -m repro.env.smoke

bench:
	pytest benchmarks/ --benchmark-only

experiments:
	python -m repro all

export:
	python -m repro export results

examples:
	python examples/quickstart.py
	python examples/application_mapping.py
	python examples/svm_inference.py
	python examples/bnn_inference.py
	python examples/energy_harvesting_sweep.py
	python examples/deployment_pipeline.py

all: test bench experiments
